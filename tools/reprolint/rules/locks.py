"""Rule ``lock-discipline``: shared mutable state is only touched under its lock.

The program / twiddle / plan LRU caches and the ``WorkerPool`` counters are
process-wide state hit from every worker thread; PR 4's cache-stampede bug
was exactly an unlocked mutation of one of them.  This rule makes the
discipline structural:

* In a **module** that declares a lock (``NAME = threading.Lock()`` /
  ``RLock()`` at module level), every module-level mutable container
  (dict / list / set / ``OrderedDict`` / ... assignment or literal) may only
  be mutated - subscript store/delete, mutator method call - inside a
  ``with <that lock>:`` block, and every module global that functions rebind
  through ``global`` (cache counters, default names, the lazily-created
  pool) may only be rebound under the lock as well.
* In a **class** whose ``__init__`` / ``__post_init__`` (or dataclass field
  ``default_factory``) declares a lock attribute, every container / counter
  attribute initialised there may only be mutated outside the initialiser
  inside ``with self.<lock>:``.

Scopes that declare no lock are exempt: the rule enforces declared
discipline, it does not guess which unlocked state is shared.  Intentional
unlocked access (single-threaded setup paths) takes a
``# reprolint: lock-ok - <why>`` waiver.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from reprolint.engine import FileContext, Project, Violation

RULE = "lock-discipline"
WAIVER = "lock-ok"

LOCK_CTORS = frozenset({"Lock", "RLock"})
CONTAINER_CTORS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "add",
        "discard",
        "appendleft",
        "popleft",
    }
)


def check(ctx: FileContext, project: Project) -> Iterator[Violation]:
    yield from _check_module(ctx)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(ctx, node)


# ----------------------------------------------------------------------
# declaration harvesting
# ----------------------------------------------------------------------

def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    return name in LOCK_CTORS


def _is_container_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in CONTAINER_CTORS
    return False


def _assign_pairs(node: ast.stmt) -> List[Tuple[str, ast.AST]]:
    """(name, value) pairs for simple-name module/class level assignments."""

    pairs: List[Tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, node.value))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            pairs.append((node.target.id, node.value))
    return pairs


@dataclass
class _Scope:
    """Declared guards and guarded names of one module or class."""

    kind: str  # "module" | "class"
    name: str
    locks: Set[str] = field(default_factory=set)
    containers: Set[str] = field(default_factory=set)
    rebindables: Set[str] = field(default_factory=set)


# ----------------------------------------------------------------------
# module scope
# ----------------------------------------------------------------------

def _module_scope(ctx: FileContext) -> Optional[_Scope]:
    scope = _Scope(kind="module", name=ctx.rel)
    module_names: Set[str] = set()
    for stmt in ctx.tree.body:
        for name, value in _assign_pairs(stmt):
            module_names.add(name)
            if _is_lock_ctor(value):
                scope.locks.add(name)
            elif _is_container_value(value):
                scope.containers.add(name)
    if not scope.locks:
        return None
    # globals rebound from inside functions are guarded too (counters, the
    # default-backend name, lazily created singletons)
    for func in ast.walk(ctx.tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    scope.rebindables.update(set(node.names) & module_names)
    return scope


def _check_module(ctx: FileContext) -> Iterator[Violation]:
    scope = _module_scope(ctx)
    if scope is None:
        return
    for func in _top_level_functions(ctx.tree):
        yield from _check_body(ctx, scope, func, receiver=None)


def _top_level_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            yield stmt


# ----------------------------------------------------------------------
# class scope
# ----------------------------------------------------------------------

def _class_scope(node: ast.ClassDef) -> Optional[_Scope]:
    scope = _Scope(kind="class", name=node.name)
    for stmt in node.body:
        # dataclass-style declarations: ``x: T = field(default_factory=dict)``
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            factory = _field_default_factory(stmt.value)
            if factory in LOCK_CTORS or factory == "Lock":
                scope.locks.add(stmt.target.id)
            elif factory in CONTAINER_CTORS:
                scope.containers.add(stmt.target.id)
        if isinstance(stmt, ast.FunctionDef) and stmt.name in ("__init__", "__post_init__"):
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Assign):
                    continue
                for target in inner.targets:
                    if not (_is_self_attr(target)):
                        continue
                    attr = target.attr  # type: ignore[union-attr]
                    if _is_lock_ctor(inner.value):
                        scope.locks.add(attr)
                    elif _is_container_value(inner.value):
                        scope.containers.add(attr)
                    elif isinstance(inner.value, ast.Constant) and isinstance(
                        inner.value.value, int
                    ) and not isinstance(inner.value.value, bool):
                        scope.rebindables.add(attr)
    if not scope.locks:
        return None
    return scope


def _field_default_factory(value: Optional[ast.AST]) -> str:
    if not isinstance(value, ast.Call):
        return ""
    func = value.func
    if getattr(func, "id", getattr(func, "attr", "")) != "field":
        return ""
    for keyword in value.keywords:
        if keyword.arg == "default_factory":
            factory = keyword.value
            return (
                factory.attr
                if isinstance(factory, ast.Attribute)
                else getattr(factory, "id", "")
            )
    return ""


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _check_class(ctx: FileContext, node: ast.ClassDef) -> Iterator[Violation]:
    scope = _class_scope(node)
    if scope is None:
        return
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name not in (
            "__init__",
            "__post_init__",
        ):
            yield from _check_body(ctx, scope, stmt, receiver="self")


# ----------------------------------------------------------------------
# mutation walk
# ----------------------------------------------------------------------

def _check_body(
    ctx: FileContext,
    scope: _Scope,
    func: ast.FunctionDef,
    receiver: Optional[str],
) -> Iterator[Violation]:
    declared_globals: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_globals.update(node.names)
    yield from _walk(ctx, scope, func, receiver, declared_globals, locked=False)


def _walk(
    ctx: FileContext,
    scope: _Scope,
    node: ast.AST,
    receiver: Optional[str],
    declared_globals: Set[str],
    locked: bool,
) -> Iterator[Violation]:
    for child in ast.iter_child_nodes(node):
        child_locked = locked or (
            isinstance(child, ast.With) and _with_holds_lock(child, scope, receiver)
        )
        if not child_locked:
            for name, description, site in _mutations(
                child, scope, receiver, declared_globals
            ):
                if ctx.waived(WAIVER, site):
                    continue
                yield Violation(
                    ctx.rel,
                    site.lineno,
                    RULE,
                    f"{description} of {scope.kind}-level {name!r} outside "
                    f"'with {_guard_label(scope, receiver)}:' "
                    f"(waive with '# reprolint: {WAIVER} - <why>')",
                )
        yield from _walk(ctx, scope, child, receiver, declared_globals, child_locked)


def _guard_label(scope: _Scope, receiver: Optional[str]) -> str:
    lock = sorted(scope.locks)[0]
    return f"{receiver}.{lock}" if receiver else lock


def _with_holds_lock(node: ast.With, scope: _Scope, receiver: Optional[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if receiver is None:
            if isinstance(expr, ast.Name) and expr.id in scope.locks:
                return True
        else:
            if (
                _is_self_attr(expr)
                and expr.attr in scope.locks  # type: ignore[union-attr]
            ):
                return True
    return False


def _mutations(
    node: ast.AST,
    scope: _Scope,
    receiver: Optional[str],
    declared_globals: Set[str],
) -> Iterator[Tuple[str, str, ast.AST]]:
    """Guarded-name mutations performed directly by ``node`` (not children)."""

    def guarded_base(expr: ast.AST) -> Optional[str]:
        if receiver is None:
            if isinstance(expr, ast.Name) and expr.id in scope.containers:
                return expr.id
        else:
            if _is_self_attr(expr) and expr.attr in scope.containers:  # type: ignore[union-attr]
                return expr.attr
        return None

    def rebind_target(expr: ast.AST) -> Optional[str]:
        if receiver is None:
            if (
                isinstance(expr, ast.Name)
                and expr.id in declared_globals
                and expr.id in (scope.rebindables | scope.containers)
            ):
                return expr.id
        else:
            if _is_self_attr(expr) and expr.attr in (  # type: ignore[union-attr]
                scope.rebindables | scope.containers
            ):
                return expr.attr
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        verb = "augmented assignment" if isinstance(node, ast.AugAssign) else "assignment"
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = guarded_base(target.value)
                if name:
                    yield name, "subscript store", node
            else:
                name = rebind_target(target)
                if name:
                    yield name, verb, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = guarded_base(target.value)
                if name:
                    yield name, "subscript delete", node
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            name = guarded_base(func.value)
            if name:
                yield name, f".{func.attr}(...) call", node

"""Rule ``capability-guard``: gated program paths stay behind their guards.

The in-place Stockham lowering and the threaded six-step program only
exist for sizes/backends that advertise the capability
(``stockham_supported``, ``FFTBackend.supports_inplace`` /
``supports_threads``, ``threading_profitable``).  A call site that skips
the guard works on the sizes the author tested and raises (or silently
degrades) on the rest - exactly the class of bug a reproduction cannot
afford on untested paths.  In ``src`` (tests and benchmarks may poke the
internals directly):

* calls to ``get_stockham_program(...)`` / ``.execute_inplace(...)`` /
  ``.execute_inverse_inplace(...)`` must sit in a function that shows
  in-place guard evidence;
* calls to ``get_threaded_program(...)`` must sit in a function that shows
  threading guard evidence;
* calls to ``get_native_kernels(...)`` must sit in a function that shows
  native-tier guard evidence (``native_supported`` / ``supports_native``) -
  the unguarded call raises when the tier is down (no compiler,
  ``REPRO_NO_NATIVE``), which is precisely the degraded environment a
  graceful-fallback path must survive.

Guard evidence is lexical: a reference to one of the capability predicates,
a ``hasattr(...)`` probe, or an ``is None`` / ``is not None`` receiver
check, either in the enclosing function or in the enclosing class's
``__init__`` / ``__post_init__`` (constructor-established invariants).
A class calling its *own* method (``self.execute_inplace(...)`` inside the
class that defines it) is exempt - the program object is the capability.
Anything intentionally unguarded takes
``# reprolint: capability-ok - <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from reprolint.engine import FileContext, Project, Violation

RULE = "capability-guard"
WAIVER = "capability-ok"

INPLACE_TOKENS = frozenset({"stockham_supported", "supports_inplace"})
THREAD_TOKENS = frozenset(
    {"threading_profitable", "resolve_thread_count", "supports_threads"}
)
NATIVE_TOKENS = frozenset({"native_supported", "supports_native"})

#: function-call targets -> required guard tokens
CALL_TARGETS = {
    "get_stockham_program": INPLACE_TOKENS,
    "get_threaded_program": THREAD_TOKENS,
    "get_native_kernels": NATIVE_TOKENS,
}
#: method-call targets -> required guard tokens
METHOD_TARGETS = {
    "execute_inplace": INPLACE_TOKENS,
    "execute_inverse_inplace": INPLACE_TOKENS,
}


def check(ctx: FileContext, project: Project) -> Iterator[Violation]:
    if ctx.in_tree("tests", "benchmarks", "tools"):
        return
    for func, owner, ancestors in _functions_with_class(ctx.tree):
        yield from _check_function(ctx, func, owner, ancestors)


def _functions_with_class(tree: ast.Module):
    """Yield (function, enclosing class, enclosing function chain) triples."""

    def walk(node, owner, ancestors):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child, ancestors)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner, tuple(ancestors)
                yield from walk(child, owner, ancestors + [child])
            else:
                yield from walk(child, owner, ancestors)

    yield from walk(tree, None, [])


def _check_function(
    ctx: FileContext,
    func: ast.FunctionDef,
    owner: Optional[ast.ClassDef],
    ancestors: Tuple[ast.FunctionDef, ...],
) -> Iterator[Violation]:
    evidence: Optional[Set[str]] = None  # computed lazily, once per function
    for node in _walk_skipping_nested(func):
        if not isinstance(node, ast.Call):
            continue
        target = _call_target(node)
        if target is None:
            continue
        label, tokens = target
        if _is_own_method_call(node, owner):
            continue
        if evidence is None:
            # a closure inherits the guards its enclosing functions
            # established; a method inherits its class's constructor guards
            evidence = _guard_evidence(func)
            for ancestor in ancestors:
                evidence |= _guard_evidence(ancestor)
            if owner is not None:
                for stmt in owner.body:
                    if isinstance(stmt, ast.FunctionDef) and stmt.name in (
                        "__init__",
                        "__post_init__",
                    ):
                        evidence |= _guard_evidence(stmt)
        if tokens & evidence or "hasattr" in evidence or "is-none" in evidence:
            continue
        if ctx.waived(WAIVER, node):
            continue
        yield Violation(
            ctx.rel,
            node.lineno,
            RULE,
            f"{label} without a capability guard in {func.name!r} "
            f"(expected one of {sorted(tokens)}, a hasattr probe, or an "
            f"'is None' receiver check; waive with "
            f"'# reprolint: {WAIVER} - <why>')",
        )


def _walk_skipping_nested(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested function defs
    (those are reported once, under their own name, with chained evidence)."""

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from walk(child)

    yield from walk(func)


def _call_target(node: ast.Call) -> Optional[Tuple[str, frozenset]]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in CALL_TARGETS:
        return f"call to {func.id}(...)", CALL_TARGETS[func.id]
    if isinstance(func, ast.Attribute) and func.attr in METHOD_TARGETS:
        return f"call to .{func.attr}(...)", METHOD_TARGETS[func.attr]
    return None


def _is_own_method_call(node: ast.Call, owner: Optional[ast.ClassDef]) -> bool:
    """``self.execute_inplace(...)`` inside the class that defines it."""

    if owner is None:
        return False
    func = node.func
    if not (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return False
    return any(
        isinstance(stmt, ast.FunctionDef) and stmt.name == func.attr
        for stmt in owner.body
    )


def _guard_evidence(func: ast.FunctionDef) -> Set[str]:
    evidence: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            if node.id in INPLACE_TOKENS | THREAD_TOKENS | NATIVE_TOKENS:
                evidence.add(node.id)
            elif node.id == "hasattr":
                evidence.add("hasattr")
        elif isinstance(node, ast.Attribute):
            if node.attr in INPLACE_TOKENS | THREAD_TOKENS | NATIVE_TOKENS:
                evidence.add(node.attr)
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops) and any(
                isinstance(cmp, ast.Constant) and cmp.value is None
                for cmp in node.comparators
            ):
                evidence.add("is-none")
    return evidence

"""Rule ``hotpath-alloc``: hot-path stage-program bodies must not allocate.

The paper's low-overhead claim rests on the executor's compiled programs
reusing thread-local scratch instead of allocating per call (PR 5's
tracemalloc test asserts this for one size; this rule asserts the *shape*
for every size).  Functions whose name marks them as hot - ``execute*`` /
``transform*`` prefixes, ``*_into`` / ``*_overwrite`` suffixes - in the
executor, the real-transform module, the threaded runtime, and the FTPlan
transform fast paths may not:

* call allocating numpy constructors (``np.empty`` / ``zeros`` /
  ``concatenate`` / ``array`` / ``ascontiguousarray`` / ...),
* call ``.copy()`` or ``.astype()`` on anything,
* build list/set/dict literals or comprehensions inside a loop.

The sanctioned escape hatches are the thread-local scratch helpers
(``_work_buffers`` / ``_stockham_scratch``, whose *bodies* are not hot
functions) and an explicit ``# reprolint: alloc-ok - <why>`` waiver for
the handful of boundary allocations (final output buffers, cold fallback
branches) that are part of the contract.

Telemetry emits in hot functions follow the same discipline: an
``emit(...)`` call on a trace alias (``_trace.emit`` / ``trace.emit``)
must be lexically dominated by an ``if`` whose test reads ``.active``, so
the disabled path costs one attribute check and never allocates, locks, or
formats (the :mod:`repro.telemetry.trace` hot-path contract).  The
always-on counters (``_metrics.inc``) are exempt: incrementing a
per-thread shard is lock-free and allocation-free by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from reprolint.engine import FileContext, Project, Violation

RULE = "hotpath-alloc"
WAIVER = "alloc-ok"

#: file -> hot-function name prefixes enforced there.  The ``_into`` /
#: ``_overwrite`` suffixes are hot in every listed file.
HOT_FILES = {
    "src/repro/fftlib/executor.py": ("execute", "transform"),
    "src/repro/fftlib/real.py": ("execute", "transform"),
    "src/repro/runtime/threaded.py": ("execute", "transform"),
    # FTPlan's execute* entry points run the (allocating) protection
    # machinery; only its transform fast paths are allocation-sensitive.
    "src/repro/core/ftplan.py": ("transform",),
    # The fused protected program: execute_tapped replicates the executor's
    # scratch discipline and encode's telescoping folds are the per-call
    # reference side, both on the protected hot path.
    "src/repro/fftlib/protected.py": ("execute", "encode", "transform"),
    # The native-tier ctypes shim: each NativeProgram.execute* is one
    # foreign call plus pointer marshalling - any numpy allocation here
    # would defeat the tier's purpose.
    "src/repro/fftlib/native/kernels.py": ("execute", "transform"),
    # The serve daemon's per-request hot path: frame parse (head JSON +
    # zero-copy payload view; response encodes carry waivers for the one
    # response-buffer copy) and the batch append (dict lookup + two list
    # appends between parse and flush).  Batch *execution* runs on worker
    # threads through execute_many and is covered by ftplan's entries.
    "src/repro/server/protocol.py": ("parse", "encode"),
    "src/repro/server/batching.py": ("append",),
}
HOT_SUFFIXES = ("_into", "_overwrite")

#: allocating numpy constructors (``asarray`` is deliberately absent: it is
#: the no-copy normalisation idiom and never allocates for conforming input)
NUMPY_ALLOCATORS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
        "array",
        "copy",
        "concatenate",
        "stack",
        "hstack",
        "vstack",
        "column_stack",
        "tile",
        "repeat",
        "ascontiguousarray",
        "asfortranarray",
    }
)

#: allocating methods on any receiver
ALLOCATING_METHODS = frozenset({"copy", "astype"})

NUMPY_ALIASES = frozenset({"np", "numpy"})

#: receiver names an ``emit(...)`` attribute call is treated as telemetry on
TRACE_ALIASES = frozenset({"_trace", "trace"})


def is_hot_function(name: str, prefixes: Tuple[str, ...]) -> bool:
    stripped = name.lstrip("_")
    if any(stripped.startswith(prefix) for prefix in prefixes):
        return True
    return name.endswith(HOT_SUFFIXES)


def _hot_prefixes(ctx: FileContext) -> Tuple[str, ...]:
    for rel, prefixes in HOT_FILES.items():
        if ctx.matches(rel):
            return prefixes
    return ()


def check(ctx: FileContext, project: Project) -> Iterator[Violation]:
    prefixes = _hot_prefixes(ctx)
    if not prefixes:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef) and is_hot_function(node.name, prefixes):
            yield from _check_function(ctx, node)


def _check_function(ctx: FileContext, func: ast.FunctionDef) -> Iterator[Violation]:
    for finding, node in _walk(func, in_loop=False):
        if ctx.waived(WAIVER, node):
            continue
        yield Violation(
            ctx.rel,
            node.lineno,
            RULE,
            f"{finding} in hot function {func.name!r} "
            f"(waive with '# reprolint: {WAIVER} - <why>' or use the "
            f"thread-local scratch helpers)",
        )
    for node in _unguarded_emits(func, guarded=False):
        if ctx.waived(WAIVER, node):
            continue
        yield Violation(
            ctx.rel,
            node.lineno,
            RULE,
            f"unguarded telemetry emit in hot function {func.name!r}: wrap "
            f"in 'if _trace.active:' so the disabled path stays a single "
            f"attribute check (waive with '# reprolint: {WAIVER} - <why>')",
        )


def _walk(node: ast.AST, in_loop: bool) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (description, node) for every allocation under ``node``.

    Tracks loop nesting lexically; nested function definitions are walked
    too (a closure defined in a hot body runs on the hot path).
    """

    children: List[ast.AST] = list(ast.iter_child_nodes(node))
    for child in children:
        child_in_loop = in_loop or isinstance(child, (ast.For, ast.While))
        if isinstance(child, ast.Call):
            label = _allocating_call(child, in_loop)
            if label:
                yield label, child
        elif in_loop and isinstance(
            child, (ast.List, ast.Set, ast.Dict, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            yield f"{_literal_label(child)} inside a loop", child
        yield from _walk(child, child_in_loop)


def _allocating_call(call: ast.Call, in_loop: bool) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if (
            isinstance(base, ast.Name)
            and base.id in NUMPY_ALIASES
            and func.attr in NUMPY_ALLOCATORS
        ):
            return f"allocating call {base.id}.{func.attr}(...)"
        if func.attr in ALLOCATING_METHODS:
            return f"allocating method call .{func.attr}(...)"
    elif (
        in_loop
        and isinstance(func, ast.Name)
        and func.id in {"list", "dict", "set", "bytearray"}
    ):
        # container constructors follow the same rule as container
        # literals: per-iteration allocation is what the rule forbids
        return f"allocating constructor {func.id}(...) inside a loop"
    return ""


def _is_emit_call(node: ast.AST) -> bool:
    """Whether ``node`` is a telemetry emit (``_trace.emit(...)`` shape)."""

    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "emit":
        base = func.value
        return isinstance(base, ast.Name) and base.id in TRACE_ALIASES
    return isinstance(func, ast.Name) and func.id == "emit"


def _test_reads_active(test: ast.AST) -> bool:
    """Whether an ``if`` test reads the trace gate (``....active``)."""

    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "active":
            return True
        if isinstance(sub, ast.Name) and sub.id == "active":
            return True
    return False


def _unguarded_emits(node: ast.AST, guarded: bool) -> Iterator[ast.AST]:
    """Yield emit calls not lexically dominated by an ``if ... .active:``."""

    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.If) and _test_reads_active(child.test):
            for stmt in child.body:
                yield from _unguarded_emits(stmt, True)
            for stmt in child.orelse:
                yield from _unguarded_emits(stmt, guarded)
            continue
        if not guarded and _is_emit_call(child):
            yield child
        yield from _unguarded_emits(child, guarded)


def _literal_label(node: ast.AST) -> str:
    return {
        ast.List: "list literal",
        ast.Set: "set literal",
        ast.Dict: "dict literal",
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
    }[type(node)]

"""Rule ``frozen-object``: plan-time dataclasses stay frozen.

``FTConfig``, ``SchemeConstants``, ``ThresholdPolicy``, ``Plan``, ``Stage``
and friends are ``@dataclass(frozen=True)`` precisely so that a plan,
once built, can be shared across threads and cached without defensive
copies.  Runtime enforcement exists (``FrozenInstanceError``) but only on
the paths tests happen to execute; this rule flags the pattern statically:

* ``x.attr = ...`` (or ``x.attr += ...``) where ``x`` is inferred to hold
  an instance of a frozen dataclass - assigned from its constructor or a
  classmethod on it, produced by ``dataclasses.replace``, or annotated
  with the class;
* ``object.__setattr__(x, ...)`` on such an instance outside the frozen
  class's own methods (``__post_init__`` uses it legitimately; everyone
  else is defeating the freeze).

The registry of frozen class names is collected across every scanned file,
so instances travelling between modules are still recognised.  Attribute
assignments inside ``with pytest.raises(...)`` blocks are exempt - that is
how tests *assert* frozenness.  Anything else takes a
``# reprolint: frozen-ok - <why>`` waiver.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from reprolint.engine import FileContext, Project, Violation

RULE = "frozen-object"
WAIVER = "frozen-ok"


def check(ctx: FileContext, project: Project) -> Iterator[Violation]:
    frozen = project.frozen_classes
    if not frozen:
        return
    for func in _functions_with_class(ctx.tree):
        func_node, owner_class = func
        tracked = _tracked_vars(func_node, frozen)
        if not tracked:
            continue
        yield from _check_function(ctx, func_node, owner_class, tracked, frozen)


def _functions_with_class(tree: ast.Module):
    """Yield (function, enclosing class name or None) pairs, recursively."""

    def walk(node: ast.AST, owner: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                yield from walk(child, owner)
            else:
                yield from walk(child, owner)

    yield from walk(tree, None)


# ----------------------------------------------------------------------
# instance tracking (flow-insensitive, per function)
# ----------------------------------------------------------------------

def _annotation_class(annotation: Optional[ast.AST], frozen: Set[str]) -> str:
    """The frozen class named by ``annotation`` (handles Optional[...] / strings)."""

    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().rsplit(".", 1)[-1]
        return name if name in frozen else ""
    if isinstance(annotation, ast.Name):
        return annotation.id if annotation.id in frozen else ""
    if isinstance(annotation, ast.Attribute):
        return annotation.attr if annotation.attr in frozen else ""
    if isinstance(annotation, ast.Subscript):  # Optional[X], list[X] -> X is a guess
        return _annotation_class(annotation.slice, frozen)
    return ""


def _constructed_class(value: ast.AST, frozen: Set[str], tracked: Dict[str, str]) -> str:
    """The frozen class an expression evaluates to, if inferable."""

    if not isinstance(value, ast.Call):
        return ""
    func = value.func
    if isinstance(func, ast.Name):
        if func.id in frozen:
            return func.id
        if func.id == "replace" and value.args:
            return _expr_class(value.args[0], frozen, tracked)
    elif isinstance(func, ast.Attribute):
        base = func.value
        # ``FrozenClass.from_name(...)`` style classmethod constructors
        if isinstance(base, ast.Name) and base.id in frozen:
            return base.id
        # ``dataclasses.replace(x, ...)``
        if func.attr == "replace" and isinstance(base, ast.Name) and base.id in (
            "dataclasses",
        ):
            if value.args:
                return _expr_class(value.args[0], frozen, tracked)
        # ``x.replace(...)`` instance helper on a tracked instance
        if func.attr == "replace":
            return _expr_class(base, frozen, tracked)
    return ""


def _expr_class(expr: ast.AST, frozen: Set[str], tracked: Dict[str, str]) -> str:
    if isinstance(expr, ast.Name):
        return tracked.get(expr.id, "")
    return _constructed_class(expr, frozen, tracked)


def _tracked_vars(func: ast.FunctionDef, frozen: Set[str]) -> Dict[str, str]:
    tracked: Dict[str, str] = {}
    for arg in list(func.args.args) + list(func.args.kwonlyargs) + list(
        func.args.posonlyargs
    ):
        cls = _annotation_class(arg.annotation, frozen)
        if cls:
            tracked[arg.arg] = cls
    # two passes so ``y = replace(x, ...)`` after ``x = Frozen(...)`` resolves
    for _ in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    cls = _constructed_class(node.value, frozen, tracked)
                    if cls:
                        tracked[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                cls = _annotation_class(node.annotation, frozen)
                if cls:
                    tracked[node.target.id] = cls
    return tracked


# ----------------------------------------------------------------------
# violation walk
# ----------------------------------------------------------------------

_INIT_METHODS = ("__init__", "__post_init__", "__new__")


def _check_function(
    ctx: FileContext,
    func: ast.FunctionDef,
    owner_class: Optional[str],
    tracked: Dict[str, str],
    frozen: Set[str],
) -> Iterator[Violation]:
    own_init = func.name in _INIT_METHODS and owner_class in frozen
    in_frozen_method = owner_class in frozen

    def walk(node: ast.AST, in_raises: bool) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions are visited on their own
            child_in_raises = in_raises or (
                isinstance(child, ast.With) and _is_pytest_raises(child)
            )
            if not child_in_raises and not own_init:
                yield from _flag(ctx, child, tracked, in_frozen_method)
            yield from walk(child, child_in_raises)

    yield from walk(func, False)


def _is_pytest_raises(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
            if name == "raises":
                return True
    return False


def _flag(
    ctx: FileContext,
    node: ast.AST,
    tracked: Dict[str, str],
    in_frozen_method: bool,
) -> Iterator[Violation]:
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in tracked
            ):
                if ctx.waived(WAIVER, node):
                    continue
                cls = tracked[target.value.id]
                yield Violation(
                    ctx.rel,
                    node.lineno,
                    RULE,
                    f"attribute assignment {target.value.id}.{target.attr} on frozen "
                    f"dataclass {cls!r} (build a new instance with "
                    f"dataclasses.replace, or waive with "
                    f"'# reprolint: {WAIVER} - <why>')",
                )
    elif isinstance(node, ast.Call) and not in_frozen_method:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in tracked
        ):
            if not ctx.waived(WAIVER, node):
                cls = tracked[node.args[0].id]
                yield Violation(
                    ctx.rel,
                    node.lineno,
                    RULE,
                    f"object.__setattr__ on frozen dataclass {cls!r} outside its "
                    f"own methods (waive with '# reprolint: {WAIVER} - <why>')",
                )

"""Shared infrastructure: file contexts, waiver comments, the scan driver.

Every rule module exposes ``RULE`` (its identifier, which doubles as the
waiver token prefix) and ``check(ctx, project)`` yielding
:class:`Violation` objects.  The driver parses each file once, builds the
cross-file state rules need (currently: the registry of frozen dataclass
names), and lets each rule walk the shared tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Violation",
    "FileContext",
    "Project",
    "collect_files",
    "scan_paths",
]

#: ``# reprolint: alloc-ok``, ``# reprolint: lock-ok, fft-ok - reason ...``
_WAIVER_RE = re.compile(r"#\s*reprolint:\s*([a-z][a-z0-9-]*(?:\s*,\s*[a-z][a-z0-9-]*)*)")


@dataclass(frozen=True)
class Violation:
    """One rule hit: ``path:line: [rule] message``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the waiver tokens declared on them."""

    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            tokens = {part.strip() for part in match.group(1).split(",")}
            waivers[lineno] = tokens
    return waivers


class FileContext:
    """One parsed source file plus its waiver map."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.waivers = parse_waivers(source)
        self._comment_lines = {
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if line.lstrip().startswith("#")
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_path(cls, path: Path, root: Optional[Path] = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to((root or Path.cwd()).resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path, rel, source, tree)

    @classmethod
    def from_source(cls, source: str, rel: str = "<snippet>.py") -> "FileContext":
        """A context for an in-memory snippet (fixture tests use this)."""

        return cls(Path(rel), rel, source, ast.parse(source, filename=rel))

    # ------------------------------------------------------------------
    def matches(self, *rel_paths: str) -> bool:
        """Whether this file *is* one of ``rel_paths`` (suffix-robust)."""

        for candidate in rel_paths:
            if self.rel == candidate or self.rel.endswith("/" + candidate):
                return True
        return False

    def in_tree(self, *prefixes: str) -> bool:
        """Whether this file lives under one of the top-level ``prefixes``."""

        for prefix in prefixes:
            if self.rel.startswith(prefix + "/") or f"/{prefix}/" in self.rel:
                return True
        return False

    def waived(self, token: str, node: ast.AST) -> bool:
        """Whether ``node`` carries (or is preceded by) a waiver for ``token``.

        The waiver comment may sit on any physical line of the flagged
        statement, or anywhere in the contiguous comment block directly
        above it, so multi-line justifications work naturally.
        """

        first = getattr(node, "lineno", 0)
        last = getattr(node, "end_lineno", first) or first
        for lineno in range(first, last + 1):
            if token in self.waivers.get(lineno, ()):
                return True
        lineno = first - 1
        while lineno >= 1 and lineno in self._comment_lines:
            if token in self.waivers.get(lineno, ()):
                return True
            lineno -= 1
        return False


@dataclass
class Project:
    """Cross-file state shared by all rules during one scan."""

    #: names of every ``@dataclass(frozen=True)`` class seen in the scan
    frozen_classes: Set[str] = field(default_factory=set)

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                self.frozen_classes.add(node.name)


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value is True:
                    return True
    return False


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", "results", ".ruff_cache", ".mypy_cache"}


def collect_files(paths: Sequence[str], root: Optional[Path] = None) -> List[Path]:
    base = (root or Path.cwd()).resolve()
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = base / path
        if path.is_file() and path.suffix == ".py":
            files.append(path)
            continue
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
    return files


def scan_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    rules: Optional[Iterable[object]] = None,
) -> List[Violation]:
    """Scan ``paths`` with every rule; returns violations sorted by location."""

    from reprolint import rules as rule_package

    active = list(rules) if rules is not None else rule_package.ALL_RULES
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for path in collect_files(paths, root=root):
        try:
            contexts.append(FileContext.from_path(path, root=root))
        except SyntaxError as exc:
            errors.append(
                Violation(str(path), exc.lineno or 0, "parse-error", str(exc.msg))
            )
    project = Project()
    for ctx in contexts:
        project.collect(ctx)
    violations = list(errors)
    for ctx in contexts:
        for rule in active:
            violations.extend(rule.check(ctx, project))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def run_rule(
    rule: object, source: str, rel: str, extra_frozen: Iterable[str] = ()
) -> List[Violation]:
    """Run one rule over an in-memory snippet (test helper)."""

    ctx = FileContext.from_source(source, rel)
    project = Project()
    project.collect(ctx)
    project.frozen_classes.update(extra_frozen)
    violations = rule.check(ctx, project)  # type: ignore[attr-defined]
    return sorted(violations, key=lambda v: (v.line, v.rule))


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]

"""``python -m reprolint`` entry point (see :mod:`reprolint.cli`)."""

import sys

from reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Command-line front end: ``python -m reprolint [paths...]``.

Exit status 0 means every scanned file honours every invariant (or waives
it explicitly); 1 means violations were printed, one per line in
``path:line: [rule] message`` format (editor/CI friendly).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from reprolint.engine import scan_paths

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: %(default)s)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root used to resolve relative paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule identifiers and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations are still printed)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        from reprolint.rules import ALL_RULES

        for rule in ALL_RULES:
            print(rule.RULE)
        return 0
    root = Path(args.root) if args.root else None
    violations = scan_paths(args.paths, root=root)
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        scanned = ", ".join(args.paths)
        if violations:
            print(f"reprolint: {len(violations)} violation(s) in {scanned}")
        else:
            print(f"reprolint: OK ({scanned})")
    return 1 if violations else 0

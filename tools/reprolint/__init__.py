"""reprolint: AST-based invariant checker for the repro codebase.

The repository's correctness rests on a handful of contracts that unit
tests only probe pointwise: hot-path stage programs must not allocate,
shared LRU caches must only be mutated under their locks, plan-time
dataclasses stay frozen, capability-gated program paths stay behind their
guards, and ``numpy.fft`` stays confined to the backend registry.  This
package turns each contract into a machine-checked rule:

``hotpath-alloc``
    ``execute*`` / ``transform*`` / ``*_into`` / ``*_overwrite`` functions
    in the executor, real-transform, threaded-runtime, and FTPlan fast
    paths may not call allocating constructors.
``lock-discipline``
    module- or class-level mutable containers and counters, in scopes that
    declare a ``threading.Lock``/``RLock``, may only be mutated inside a
    ``with <lock>:`` block.
``frozen-object``
    no attribute assignment on instances of ``@dataclass(frozen=True)``
    plan-time objects outside their own ``__init__``/``__post_init__``.
``capability-guard``
    calls into ``get_stockham_program`` / ``get_threaded_program`` /
    ``execute_inplace`` must be dominated by the matching capability
    guard (``stockham_supported``, ``supports_inplace``, ``hasattr``,
    ``is not None``, ...).
``fft-boundary``
    ``numpy.fft`` may only be touched by ``fftlib/backends.py`` and tests.

A violation is silenced with a same-line (or preceding-line) waiver
comment naming the rule: ``# reprolint: alloc-ok - <why>``.  Run it as
``python -m reprolint src tests benchmarks`` from the repository root.
"""

from __future__ import annotations

from reprolint.engine import FileContext, Project, Violation, scan_paths

__all__ = ["FileContext", "Project", "Violation", "scan_paths"]

__version__ = "0.1.0"

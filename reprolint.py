"""Repository-root launcher for the reprolint static-analysis pass.

The real implementation lives in ``tools/reprolint/``; this shim lets
``python -m reprolint src tests benchmarks`` (and ``python reprolint.py``)
work from the repository root without installing anything: it prepends
``tools/`` to ``sys.path`` so the package there wins the name and then
dispatches to its CLI.
"""

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parent / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

if __name__ == "__main__":
    from reprolint.cli import main

    sys.exit(main())

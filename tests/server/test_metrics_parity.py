"""Byte parity of the two Prometheus rendering surfaces.

``repro stats --prometheus`` and the serve daemon's ``/metrics`` endpoint
must emit *identical bytes* for identical registry state - both are thin
wrappers over :func:`repro.telemetry.prometheus_exposition`, and this test
pins that sharing so neither can grow its own formatting.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.client import Client
from repro.server import ServerThread

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def test_metrics_endpoint_matches_inprocess_render():
    # The scrape counts itself *before* rendering, so its body already
    # includes the scrape - and the registry is untouched afterwards, so
    # the CLI's rendering path (prometheus_exposition, same process-wide
    # registry) must reproduce the response byte for byte.
    tmp = tempfile.mkdtemp(prefix="repro-test-parity-")
    sock = os.path.join(tmp, "serve.sock")
    thread = ServerThread(port=None, unix_path=sock, window=0.0, max_batch=8, workers=1)
    thread.start()
    try:
        with Client(thread.address) as client:
            x = np.linspace(-1.0, 1.0, 64) + 0j
            client.transform(x, "opt-online+mem")
            scraped = client.metrics()
            local = telemetry.prometheus_exposition()
        assert scraped == local
        assert scraped.startswith(b"# TYPE repro_")
        assert b"repro_server_requests_total" in scraped
        # Counted before rendering: the scrape itself is in its own body
        # (counters are process-wide and cumulative, so only presence -
        # not an absolute count - is stable across the test session).
        assert b'repro_server_requests_total{endpoint="metrics"}' in scraped
    finally:
        thread.stop()
        if os.path.exists(sock):
            os.unlink(sock)
        os.rmdir(tmp)


def test_cli_prometheus_exposition_format():
    # A fresh `repro stats --prometheus` process has its own registry (no
    # server traffic), but the exposition format and the always-registered
    # cache surfaces must be present and well-formed.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "stats", "--prometheus"],
        env=env,
        capture_output=True,
        timeout=120,
    )
    assert out.returncode == 0, out.stderr.decode()
    body = out.stdout
    assert body.startswith(b"# TYPE repro_")
    for surface in (b"repro_plan_cache_", b"repro_program_cache_", b"repro_native_"):
        assert surface in body, surface
    assert body.endswith(b"\n")

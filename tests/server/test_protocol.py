"""Unit tests for the transform-server wire protocol.

Every rejection path of :mod:`repro.server.protocol` must raise
:class:`ProtocolError` with the right HTTP status and machine-readable
``kind`` - clients and the ``server_errors`` counter key on them - and the
encode/parse pairs must round-trip payload bytes exactly (the protocol is
raw little-endian arrays, so a single shifted byte corrupts spectra
silently if framing drifts).
"""

import json

import numpy as np
import pytest

from repro.server import protocol
from repro.server.protocol import ProtocolError, RequestHead


class TestParseHead:
    def test_minimal_head(self):
        head = protocol.parse_head(b'{"n": 256}')
        assert head.n == 256
        assert head.config == protocol.DEFAULT_CONFIG
        assert head.real is False
        assert head.inject is None
        assert head.payload_bytes == 256 * 16

    def test_config_canonical_name_is_group_key(self):
        # The grammar is suffix-order-strict (``+real`` before ``+t{N}``),
        # so the canonical spelling round-trips unchanged - the (n, config)
        # micro-batch group key is exactly the canonical name.
        head = protocol.parse_head(b'{"n": 64, "config": "opt-online+mem+real+t2"}')
        assert head.config == "opt-online+mem+real+t2"
        assert head.real
        assert head.payload_bytes == 64 * 8  # float64 rows for +real

    def test_backend_flags_parse(self):
        head = protocol.parse_head(b'{"n": 64, "config": "opt-online+mem+numpy"}')
        assert head.config == "opt-online+mem+numpy"

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b'{"n": 256, "bogus": 1}',
            b'{"n": "256"}',
            b'{"n": true}',
            b'{"n": 1}',
            b'{"n": 256, "config": 7}',
            b'{"n": 256, "config": "no-such-scheme"}',
        ],
    )
    def test_malformed_heads_rejected(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_head(line)
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "malformed"

    def test_oversized_head_rejected(self):
        line = b'{"n": 256, "config": "' + b"x" * protocol.MAX_HEAD_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_head(line)
        assert excinfo.value.status == 413
        assert excinfo.value.kind == "oversized"


class TestValidateInject:
    def test_defaults_filled_in(self):
        spec = protocol.validate_inject({})
        assert spec["site"] and spec["kind"]
        assert spec["magnitude"] == 10.0
        assert spec["bit"] is None and spec["index"] is None and spec["element"] is None

    @pytest.mark.parametrize(
        "spec",
        [
            "not-a-dict",
            {"bogus": 1},
            {"site": "no-such-site"},
            {"kind": "no-such-kind"},
            {"magnitude": "big"},
            {"magnitude": True},
            {"bit": 1.5},
            {"index": True},
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ProtocolError):
            protocol.validate_inject(spec)


class TestPayloads:
    def test_complex_round_trip(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        frame = protocol.encode_request(x, "opt-online+mem")
        line, _, payload = frame.partition(b"\n")
        head = protocol.parse_head(line)
        row = protocol.parse_payload(head, payload)
        assert row.dtype == np.complex128
        assert np.array_equal(row, x)

    def test_real_round_trip(self):
        x = np.linspace(-1.0, 1.0, 64)
        frame = protocol.encode_request(x, "opt-online+mem+real")
        line, _, payload = frame.partition(b"\n")
        head = protocol.parse_head(line)
        assert head.real
        row = protocol.parse_payload(head, payload)
        assert row.dtype == np.float64
        assert np.array_equal(row, x)

    def test_wrong_payload_length_rejected(self):
        head = RequestHead(n=64, config="opt-online+mem", real=False)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_payload(head, b"\x00" * 8)
        assert excinfo.value.status == 400

    def test_multirow_request_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(np.zeros((2, 64), dtype=np.complex128))


class TestResponses:
    def test_round_trip(self):
        spectrum = np.arange(8, dtype=np.complex128)
        meta = {"ok": True, "bins": 8, "scheme": "opt-online+mem"}
        meta_out, spectrum_out = protocol.parse_response(
            protocol.encode_response(meta, spectrum)
        )
        assert meta_out == json.loads(json.dumps(meta))
        assert np.array_equal(spectrum_out, spectrum)

    def test_headless_body_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_response(b"no newline anywhere")

    def test_bins_mismatch_rejected(self):
        body = protocol.encode_response({"ok": True, "bins": 4}, np.zeros(8, np.complex128))
        with pytest.raises(ProtocolError):
            protocol.parse_response(body)

    def test_metadata_only_response(self):
        meta, spectrum = protocol.parse_response(b'{"ok": false}\n')
        assert meta == {"ok": False}
        assert spectrum is None

"""Integration tests for the transform daemon.

Each test talks to a live :class:`repro.server.app.ServerThread` over a
unix socket through the blocking :class:`repro.client.Client` - the same
path the CLI and the load benchmark use.  The load-bearing assertions:

* served spectra are *bitwise* equal to a direct in-process
  ``FTPlan.execute_many`` call, per row, regardless of which other
  requests coalesced into the same micro-batch;
* live fault injection through the server detects and corrects, and the
  corrected spectrum still matches the clean reference;
* a client disconnecting mid-batch does not poison its batchmates;
* oversized and malformed requests are rejected with the right status
  and machine-readable kind, and the connection state stays sane.
"""

import os
import tempfile
import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.client import Client, ServerError
from repro.server import ServerThread

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def _rows(n: int, real: bool, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if real:
        return rng.uniform(-1.0, 1.0, n)
    return rng.uniform(-1.0, 1.0, n) + 1j * rng.uniform(-1.0, 1.0, n)


def _reference(n: int, config: str, x: np.ndarray) -> np.ndarray:
    return repro.plan(n, config).execute_many(x[np.newaxis]).output[0]


@pytest.fixture(scope="module")
def server():
    tmp = tempfile.mkdtemp(prefix="repro-test-serve-")
    sock = os.path.join(tmp, "serve.sock")
    thread = ServerThread(port=None, unix_path=sock, window=0.0, max_batch=32, workers=1)
    thread.start()
    yield thread
    thread.stop()
    if os.path.exists(sock):
        os.unlink(sock)
    os.rmdir(tmp)


class TestTransform:
    def test_roundtrip_bitwise_vs_direct(self, server):
        x = _rows(256, real=False, seed=1)
        with Client(server.address) as client:
            reply = client.transform(x, "opt-online+mem")
        assert np.array_equal(reply.output, _reference(256, "opt-online+mem", x))
        assert reply.meta["ok"] is True
        assert reply.meta["n"] == 256
        assert reply.meta["bins"] == 256
        # The batched path labels its reports "<scheme>[batch]"
        assert reply.scheme.startswith("opt-online+mem")
        assert not reply.detected and not reply.uncorrectable

    def test_real_config_roundtrip(self, server):
        x = _rows(256, real=True, seed=2)
        with Client(server.address) as client:
            reply = client.transform(x, "opt-online+mem+real")
        expected = _reference(256, "opt-online+mem+real", x)
        assert np.array_equal(reply.output, expected)
        assert reply.meta["bins"] == expected.shape[-1]

    def test_concurrent_mixed_groups_bitwise(self, server):
        # Several (n, config) group keys in flight at once: every row's
        # spectrum must be bitwise what a direct execute_many of that row
        # alone produces, whatever batch it coalesced into - and batching
        # must actually have happened (the whole point of the window).
        cases = [
            (256, "opt-online+mem"),
            (256, "opt-online+mem+numpy"),
            (512, "opt-online+mem"),
            (256, "opt-online+mem+real"),
        ]
        for n, config in cases:  # warm the plan cache outside the flood
            repro.plan(n, config)
        rounds = 6
        errors = []
        batches_before = sum(
            v for (name, _), v in telemetry.counters().items() if name == "server_batches"
        )

        def worker(slot: int, n: int, config: str) -> None:
            try:
                with Client(server.address) as client:
                    for round_index in range(rounds):
                        x = _rows(n, "real" in config, seed=100 * slot + round_index)
                        reply = client.transform(x, config)
                        expected = _reference(n, config, x)
                        assert np.array_equal(reply.output, expected), (
                            slot, round_index, n, config,
                        )
                        assert reply.batch_size >= 1
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot, n, config))
            for slot, (n, config) in enumerate(cases * 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        batches = sum(
            v for (name, _), v in telemetry.counters().items() if name == "server_batches"
        ) - batches_before
        total = len(threads) * rounds
        assert 0 < batches <= total

    def test_live_fault_injection(self, server):
        x = _rows(256, real=False, seed=3)
        clean = _reference(256, "opt-online+mem", x)
        with Client(server.address) as client:
            reply = client.transform(
                x,
                "opt-online+mem",
                inject={"site": "stage1-compute", "kind": "add-constant", "magnitude": 50.0},
            )
        assert reply.detected
        assert reply.corrected
        assert not reply.uncorrectable
        assert reply.report["faults_fired"] == 1
        assert reply.batch_size == 1  # injection bypasses batching
        assert np.allclose(reply.output, clean)


class TestHttpSurface:
    def test_malformed_frame(self, server):
        with Client(server.address) as client:
            status, payload = client._request(
                "POST", "/v1/transform", b"not json\n\x00\x01",
                content_type="application/x-repro-frame",
            )
        assert status == 400

    def test_unknown_route(self, server):
        with Client(server.address) as client:
            status, _ = client._request("GET", "/nope")
        assert status == 404

    def test_wrong_method(self, server):
        with Client(server.address) as client:
            status, _ = client._request("GET", "/v1/transform")
        assert status == 405

    def test_healthz(self, server):
        with Client(server.address) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert any(entry.startswith("unix:") for entry in health["listening"])
        assert health["pid"] == os.getpid()

    def test_stats_surface(self, server):
        with Client(server.address) as client:
            stats = client.stats()
        assert "counters" in stats
        assert "server" in stats["caches"]
        surface = stats["caches"]["server"]
        assert surface["max_batch"] == 32
        assert surface["draining"] is False


class TestFaultTolerance:
    # Runs after TestHttpSurface: these tests start their own in-process
    # servers, which take over (and on shutdown retire) the process-wide
    # "server" telemetry surface the module fixture's server registered.

    def test_disconnect_mid_batch(self):
        # A positive window holds the batch open long enough to guarantee
        # both rows share it; the first client walks away before the flush.
        tmp = tempfile.mkdtemp(prefix="repro-test-serve-")
        sock = os.path.join(tmp, "serve.sock")
        thread = ServerThread(
            port=None, unix_path=sock, window=0.25, max_batch=32, workers=1
        )
        thread.start()
        try:
            x = _rows(256, real=False, seed=4)
            deserter = Client(thread.address)
            survivor = Client(thread.address)
            try:
                deserter.submit(x, "opt-online+mem")
                survivor.submit(x, "opt-online+mem")
                deserter.close()
                reply = survivor.collect()
            finally:
                deserter.close()
                survivor.close()
            assert np.array_equal(reply.output, _reference(256, "opt-online+mem", x))
            assert reply.batch_size == 2
        finally:
            thread.stop()
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(tmp)

    def test_oversized_payload_rejected(self):
        tmp = tempfile.mkdtemp(prefix="repro-test-serve-")
        sock = os.path.join(tmp, "serve.sock")
        thread = ServerThread(
            port=None, unix_path=sock, window=0.0, max_batch=32, workers=1,
            max_payload=1024,
        )
        thread.start()
        try:
            with Client(thread.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.transform(_rows(4096, real=False, seed=5))
                assert excinfo.value.status == 413
                assert excinfo.value.kind == "oversized"
                # The connection was closed by the rejection; the retry
                # logic reconnects and a sane request still succeeds.
                reply = client.transform(_rows(64, real=False, seed=6))
                assert reply.meta["ok"] is True
        finally:
            thread.stop()
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(tmp)


"""Smoke tests that execute every example script.

The examples are part of the public deliverable, so the test suite runs each
of them end to end (with their workload parameters shrunk where necessary to
keep the suite fast) and checks they complete and print their headline
output.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    """Import an example script as a module without running ``main()``."""

    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "spectral_analysis_with_faults.py",
            "fault_injection_campaign.py",
            "parallel_simulation.py",
            "overhead_model_report.py",
        } <= names

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "fault-free run" in out
        assert "sub-FFTs redone  : 1" in out

    def test_spectral_analysis_runs_and_recovers_peaks(self, capsys, monkeypatch):
        module = load_example("spectral_analysis_with_faults.py")
        monkeypatch.setattr(module, "N", 2**12)
        monkeypatch.setattr(module, "TONES", [31, 128, 375, 900])
        module.main()
        out = capsys.readouterr().out
        assert "online ABFT (FT-FFTW)" in out
        # the protected pipelines report the correct peak set
        assert out.count("correct=True") >= 2

    def test_fault_injection_campaign_runs(self, capsys, monkeypatch):
        module = load_example("fault_injection_campaign.py")
        monkeypatch.setattr(module, "TRIALS", 9)
        monkeypatch.setattr(module, "N", 2**10)
        module.main()
        out = capsys.readouterr().out
        assert "Fault coverage" in out
        assert "Online ABFT" in out

    def test_parallel_simulation_runs(self, capsys, monkeypatch):
        module = load_example("parallel_simulation.py")
        monkeypatch.setattr(module, "N", 2**12)
        monkeypatch.setattr(module, "RANKS", 8)
        module.main()
        out = capsys.readouterr().out
        assert "opt-FT-FFTW" in out
        assert "relative output error" in out

    def test_overhead_model_report_runs(self, capsys, monkeypatch):
        module = load_example("overhead_model_report.py")
        monkeypatch.setattr(module, "MEASURE_N", 2**12)
        monkeypatch.setattr(module, "MEASURE_REPEATS", 1)
        module.main()
        out = capsys.readouterr().out
        assert "Section 7 model" in out
        assert "Measured overhead" in out

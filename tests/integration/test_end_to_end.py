"""End-to-end integration tests across subsystems.

These tie together the FFT substrate, the ABFT schemes, the fault injector,
the campaign driver and the parallel simulation in the same way the
benchmark harnesses do, at sizes small enough for the unit-test suite.
"""

import numpy as np

from repro import FaultInjector, FaultSite, FaultTolerantFFT, available_schemes, create_scheme
from repro.analysis.metrics import error_distribution_row, minimal_detectable_magnitude
from repro.analysis.roundoff import measure_stage1_residuals
from repro.faults.campaign import CoverageCampaign
from repro.faults.models import FaultKind, FaultSpec
from repro.parallel import ParallelFFT, ParallelFTFFT
from repro.perfmodel import offline_scheme_ops, online_scheme_ops


class TestSequentialPipeline:
    def test_every_scheme_handles_the_same_random_fault(self, source):
        """One fixed fault, all schemes: ABFT schemes detect, baseline does not."""

        n = 2**12
        x = source.uniform_complex(n)
        reference = np.fft.fft(x)
        for name in available_schemes():
            injector = FaultInjector().arm_computational(
                FaultSite.STAGE2_COMPUTE, index=4, element=11, magnitude=3.0
            )
            result = create_scheme(name, n).execute(x, injector)
            if name == "fftw":
                assert not result.report.detected
            else:
                assert result.report.detected
                err = np.max(np.abs(result.output - reference)) / np.max(np.abs(reference))
                assert err < 1e-9

    def test_signal_processing_round_trip_under_faults(self, source):
        """Forward + inverse protected transforms recover the original signal
        even with a fault in each direction."""

        n = 4096
        signal = source.signal_with_tones(n, tones=[17, 389], noise=0.01)
        ft = FaultTolerantFFT(n)
        forward = ft.forward(
            signal, FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=9.0)
        )
        back = ft.inverse(
            forward.output, FaultInjector().arm_memory(FaultSite.INTERMEDIATE, magnitude=2.0)
        )
        assert np.allclose(back.output, signal, atol=1e-8)

    def test_detection_limit_gap_between_online_and_offline(self, source):
        """Table 5's qualitative claim at unit-test scale."""

        n = 2**12
        x = source.uniform_complex(n)
        offline = create_scheme("opt-offline+mem", n)
        online = create_scheme("opt-online+mem", n)

        def detects(scheme, magnitude):
            spec = FaultSpec(
                site=FaultSite.INPUT, element=5, kind=FaultKind.ADD_CONSTANT, magnitude=magnitude
            )
            return scheme.execute(x, FaultInjector(specs=[spec])).report.detected

        offline_limit = minimal_detectable_magnitude(lambda m: detects(offline, m)).minimal_detected
        online_limit = minimal_detectable_magnitude(lambda m: detects(online, m)).minimal_detected
        assert online_limit < offline_limit

    def test_roundoff_study_consistent_with_scheme_thresholds(self, source):
        """No fault-free verification in a full scheme run may exceed the
        threshold that the Table 4 study reports as eta."""

        n = 2**12
        study = measure_stage1_residuals(n, runs=2, seed=5)
        x = source.uniform_complex(n)
        result = create_scheme("opt-online+mem", n).execute(x)
        assert not result.report.detected
        assert study.max_residual <= study.estimated_eta


class TestCampaignPipeline:
    def test_bitflip_campaign_orders_schemes_correctly(self):
        """Miniature Table 6: online >= offline >= unprotected coverage."""

        n = 1024
        trials = 24
        rows = {}
        for label, scheme_name in [("none", "fftw"), ("offline", "opt-offline+mem"), ("online", "opt-online+mem")]:
            scheme = create_scheme(scheme_name, n)

            campaign = CoverageCampaign(
                make_input=lambda t, rng: rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n),
                run_trial=lambda x, inj, scheme=scheme: (
                    lambda r: (
                        r.output,
                        r.report.detected,
                        r.report.corrected,
                        r.report.has_uncorrectable,
                    )
                )(scheme.execute(x, inj)),
                reference=lambda x: np.fft.fft(x),
                make_faults=lambda t, rng: [
                    FaultSpec(
                        site=[
                            FaultSite.STAGE1_INPUT,
                            FaultSite.INTERMEDIATE,
                            FaultSite.OUTPUT,
                        ][t % 3],
                        kind=FaultKind.BIT_FLIP,
                        bit=int(rng.integers(54, 63)),
                        element=int(rng.integers(0, n)),
                    )
                ],
                seed=99,
            )
            result = campaign.run(trials)
            rows[label] = error_distribution_row(
                [o.relative_error for o in result.outcomes],
                uncorrected=[o.uncorrected for o in result.outcomes],
                bounds=(1e-8,),
            )
        assert rows["online"]["> 1e-08"] <= rows["offline"]["> 1e-08"] <= rows["none"]["> 1e-08"]
        assert rows["none"]["> 1e-08"] > 0.9  # unprotected runs are essentially always wrong


class TestParallelPipeline:
    def test_parallel_matches_sequential_protected_result(self, source):
        n, p = 4096, 8
        x = source.uniform_complex(n)
        sequential = create_scheme("opt-online+mem", n).execute(x).output
        parallel = ParallelFTFFT(n, p).execute(x).output
        assert np.allclose(sequential, parallel, atol=1e-8)

    def test_parallel_overhead_shrinks_with_overlap(self):
        n, p = 2**20, 16
        base = ParallelFFT(n, p, overlap_twiddle=True).predict_timeline().elapsed
        ft = ParallelFTFFT(n, p, overlap=False).predict_timeline().elapsed
        opt_ft = ParallelFTFFT(n, p, overlap=True).predict_timeline().elapsed
        assert base < opt_ft < ft

    def test_model_counts_are_consistent_with_scheme_ordering(self):
        n = 2**22
        assert online_scheme_ops(n).fault_free < offline_scheme_ops(n).fault_free
        assert (
            online_scheme_ops(n, memory_ft=True).with_error
            < offline_scheme_ops(n, memory_ft=True).with_error
        )

"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transform", "--scheme", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["transform"])
        assert args.size == 4096
        assert args.scheme == "opt-online+mem"


class TestSchemesCommand:
    def test_lists_all_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "opt-online+mem" in out and "fftw" in out


class TestTransformCommand:
    def test_synthetic_transform(self, capsys):
        assert main(["transform", "-n", "1024", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "errors detected      : False" in out
        assert "relative output error" in out

    def test_tones_signal(self, capsys):
        assert main(["transform", "-n", "512", "--signal", "tones"]) == 0

    def test_file_input_and_output(self, tmp_path, capsys):
        signal = np.random.default_rng(0).standard_normal(256)
        infile = tmp_path / "signal.txt"
        outfile = tmp_path / "spectrum.txt"
        np.savetxt(infile, signal)
        assert main(["transform", "--input", str(infile), "-o", str(outfile)]) == 0
        data = np.loadtxt(outfile)
        spectrum = data[:, 0] + 1j * data[:, 1]
        assert np.allclose(spectrum, np.fft.fft(signal), atol=1e-8)

    def test_alternate_scheme(self, capsys):
        assert main(["transform", "-n", "256", "--scheme", "opt-offline"]) == 0


class TestInjectCommand:
    def test_computational_fault_is_corrected(self, capsys):
        code = main(["inject", "-n", "1024", "--site", "stage1-compute", "--magnitude", "25", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected      : 1" in out
        assert "errors detected      : True" in out

    def test_memory_bitflip_is_corrected(self, capsys):
        code = main(
            ["inject", "-n", "1024", "--site", "intermediate", "--kind", "bit-flip", "--bit", "60", "--seed", "2"]
        )
        assert code == 0

    def test_unprotected_scheme_returns_nonzero(self, capsys):
        code = main(
            ["inject", "-n", "1024", "--scheme", "fftw", "--site", "stage1-compute", "--magnitude", "25"]
        )
        assert code == 1

    def test_targeted_index_and_element(self, capsys):
        code = main(
            ["inject", "-n", "1024", "--site", "stage2-compute", "--index", "3", "--element", "7"]
        )
        assert code == 0


class TestPredictCommand:
    def test_sequential_prediction(self, capsys):
        assert main(["predict", "-n", str(2**20)]) == 0
        out = capsys.readouterr().out
        assert "opt-online" in out and "overhead %" in out

    def test_with_parallel_ranks(self, capsys):
        assert main(["predict", "-n", str(2**24), "-p", "256"]) == 0
        out = capsys.readouterr().out
        assert "opt-FT-FFTW" in out


class TestThreadsOption:
    def test_threaded_batched_transform(self, capsys):
        code = main(["transform", "-n", "1024", "--batch", "6", "--threads", "3", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch rows           : 6" in out

    def test_threaded_real_batch(self, capsys):
        code = main(
            ["transform", "-n", "1024", "--batch", "4", "--threads", "2", "--real", "--seed", "5"]
        )
        assert code == 0

    def test_threaded_inject_worker_chunk(self, capsys):
        # pin the OUTPUT fault to worker chunk 1; the per-chunk checksums
        # must locate and correct it (exit 0 = output within tolerance)
        code = main(
            [
                "inject", "-n", "1024", "--batch", "8", "--threads", "4",
                "--site", "output", "--kind", "set-constant", "--magnitude", "99",
                "--index", "1", "--seed", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected      : 1" in out
        assert "rows re-protected    : 1" in out

    def test_threads_zero_is_automatic(self, capsys):
        assert main(["transform", "-n", "512", "--batch", "2", "--threads", "0"]) == 0


class TestInplaceOption:
    def test_inplace_transform(self, capsys):
        assert main(["transform", "-n", "1024", "--inplace", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "relative output error" in out

    def test_inplace_real_transform(self, capsys):
        assert main(["transform", "-n", "1024", "--inplace", "--real", "--seed", "3"]) == 0

    def test_inplace_batched_transform(self, capsys):
        code = main(
            ["transform", "-n", "1024", "--batch", "4", "--inplace", "--seed", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch rows           : 4" in out

    def test_inplace_inject_output_fault_corrected(self, capsys):
        # the overwrite path destroys the input; the carried surrogate must
        # still locate and repair the output fault (exit 0 = within tolerance)
        code = main(
            [
                "inject", "-n", "1024", "--inplace", "--site", "output",
                "--magnitude", "40", "--element", "17", "--seed", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected      : 1" in out

    def test_inplace_composes_with_threads(self, capsys):
        code = main(
            ["transform", "-n", "1024", "--batch", "6", "--threads", "2",
             "--inplace", "--seed", "7"]
        )
        assert code == 0


class TestBenchCommand:
    def test_bench_smoke(self, capsys):
        assert main(["bench", "-n", "4096", "--threads", "2", "--repeats", "1", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "serial compiled" in out
        assert "threaded x2" in out
        assert "pool:" in out

    def test_bench_without_batch(self, capsys):
        assert main(["bench", "-n", "4096", "--threads", "2", "--repeats", "1", "--batch", "1"]) == 0
        out = capsys.readouterr().out
        assert "protected batch" not in out

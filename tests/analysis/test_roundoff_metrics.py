"""Tests for the round-off study (Table 4) and coverage metrics (Tables 5-6)."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    DetectionSearchResult,
    error_distribution_row,
    minimal_detectable_magnitude,
    relative_inf_error,
)
from repro.analysis.roundoff import (
    measure_stage1_residuals,
    measure_stage2_residuals,
    throughput_from_residuals,
)


class TestResidualStudies:
    def test_stage1_residuals_below_estimate(self):
        study = measure_stage1_residuals(2**10, runs=3, distribution="uniform", seed=1)
        assert study.residuals.size == 3 * 32  # k = 32 for n = 1024
        assert study.max_residual < study.estimated_eta
        assert study.throughput == 1.0

    def test_stage2_residuals_below_estimate(self):
        study = measure_stage2_residuals(2**10, runs=3, distribution="uniform", seed=1)
        assert study.residuals.size == 3 * 32
        assert study.max_residual < study.estimated_eta

    def test_normal_distribution_also_covered(self):
        study = measure_stage1_residuals(2**10, runs=2, distribution="normal", seed=2)
        assert study.throughput >= 0.999

    def test_estimate_within_two_orders_of_magnitude(self):
        """The Section 8 bound should be conservative but not absurdly loose
        (Table 4 shows estimate within ~6x of the observed max)."""

        study = measure_stage1_residuals(2**12, runs=3, seed=3)
        assert study.max_residual > 0
        assert study.estimated_eta / study.max_residual < 1e4

    def test_summary_keys(self):
        study = measure_stage1_residuals(2**8, runs=1)
        assert {"label", "sub_size", "samples", "max_residual", "estimated_eta", "throughput"} == set(
            study.summary()
        )

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            measure_stage1_residuals(256, runs=1, distribution="poisson")

    def test_throughput_from_residuals(self):
        residuals = np.array([1.0, 2.0, 3.0, 4.0])
        assert throughput_from_residuals(residuals, 2.5) == pytest.approx(0.5)
        assert throughput_from_residuals(np.array([]), 1.0) == 1.0


class TestMinimalDetectableMagnitude:
    def test_default_decade_sweep(self):
        result = minimal_detectable_magnitude(lambda mag: mag >= 1e-5, label="toy")
        assert result.minimal_detected == pytest.approx(1e-5)
        assert result.label == "toy"

    def test_custom_magnitudes(self):
        result = minimal_detectable_magnitude(lambda mag: mag > 0.5, magnitudes=[1.0, 0.6, 0.4])
        assert result.minimal_detected == pytest.approx(0.6)

    def test_nothing_detected(self):
        result = minimal_detectable_magnitude(lambda mag: False, magnitudes=[1.0, 0.1])
        assert result.minimal_detected is None

    def test_result_is_immutable_dataclass(self):
        result = DetectionSearchResult(label="x", magnitudes=[1.0], detected=[True])
        with pytest.raises(Exception):
            result.label = "y"


class TestErrorDistributionRow:
    def test_basic_row(self):
        row = error_distribution_row(
            [1e-13, 1e-7, 1e-5, 0.0],
            uncorrected=[False, False, False, True],
            bounds=[1e-6, 1e-10],
        )
        assert row["uncorrected"] == pytest.approx(0.25)
        assert row["> 1e-06"] == pytest.approx(0.5)   # 1e-5 and the inf one
        assert row["> 1e-10"] == pytest.approx(0.75)  # plus 1e-7

    def test_all_clean(self):
        row = error_distribution_row([0.0, 0.0], uncorrected=[False, False])
        assert all(v == 0.0 for v in row.values())

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            error_distribution_row([0.1], uncorrected=[False, True])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_distribution_row([], uncorrected=[])


class TestRelativeInfError:
    def test_matches_paper_definition(self):
        ref = np.array([1.0, -2.0, 4.0])
        cand = np.array([1.0, -2.0, 4.4])
        assert relative_inf_error(ref, cand) == pytest.approx(0.1)

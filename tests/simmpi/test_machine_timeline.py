"""Tests for the machine model and the virtual timeline."""

import numpy as np
import pytest

from repro.simmpi.machine import LAPTOP_LIKE, TIANHE2_LIKE, MachineModel
from repro.simmpi.timeline import VirtualTimeline


class TestMachineModel:
    def test_compute_time_linear_in_flops(self):
        m = TIANHE2_LIKE
        assert m.compute_time(2e9) == pytest.approx(2 * m.compute_time(1e9))
        assert m.compute_time(0) == 0.0

    def test_streaming_time(self):
        m = MachineModel("t", 1e9, 2e9, 1e-6, 1e9)
        assert m.streaming_time(2e9) == pytest.approx(1.0)

    def test_fft_time_follows_n_log_n(self):
        m = TIANHE2_LIKE
        t1 = m.fft_time(2**20)
        t2 = m.fft_time(2**21)
        assert 2.0 < t2 / t1 < 2.2
        assert m.fft_time(1) == 0.0

    def test_fft_time_batch(self):
        m = TIANHE2_LIKE
        assert m.fft_time(1024, batch=4) == pytest.approx(4 * m.fft_time(1024))

    def test_message_time_has_latency_floor(self):
        m = MachineModel("t", 1e9, 1e9, 1e-3, 1e9)
        assert m.message_time(0) == pytest.approx(1e-3)
        assert m.message_time(1e9, messages=2) == pytest.approx(2e-3 + 1.0)

    def test_alltoall_time_zero_for_single_rank(self):
        assert TIANHE2_LIKE.alltoall_time(1e6, 1) == 0.0

    def test_alltoall_grows_with_ranks_for_fixed_bytes_per_rank(self):
        m = TIANHE2_LIKE
        assert m.alltoall_time(1e6, 64) < m.alltoall_time(1e6, 1024)

    def test_presets_exist(self):
        assert TIANHE2_LIKE.flops_per_second > 0
        assert LAPTOP_LIKE.network_bandwidth > 0


class TestVirtualTimeline:
    def test_compute_phase_uses_max_over_ranks(self):
        t = VirtualTimeline(ranks=4)
        duration = t.compute("work", [1.0, 2.0, 0.5, 1.5])
        assert duration == 2.0
        assert t.elapsed == 2.0
        assert np.all(t.clocks == 2.0)  # barrier semantics

    def test_scalar_compute_broadcasts(self):
        t = VirtualTimeline(ranks=3)
        t.compute("work", 1.5)
        assert t.elapsed == 1.5

    def test_communicate_adds_to_all(self):
        t = VirtualTimeline(ranks=2)
        t.communicate("tran", 0.25)
        t.communicate("tran", 0.25)
        assert t.elapsed == 0.5

    def test_overlap_hides_smaller_of_comm_and_compute(self):
        t = VirtualTimeline(ranks=2)
        duration = t.overlapped("tran+ft", comm_seconds=1.0, hideable_per_rank=0.4)
        assert duration == pytest.approx(1.0)
        t2 = VirtualTimeline(ranks=2)
        assert t2.overlapped("tran+ft", comm_seconds=0.3, hideable_per_rank=0.4) == pytest.approx(0.4)

    def test_overlap_extra_is_not_hidden(self):
        t = VirtualTimeline(ranks=2)
        duration = t.overlapped("tran", comm_seconds=1.0, hideable_per_rank=0.2, extra_per_rank=0.5)
        assert duration == pytest.approx(1.5)

    def test_overlap_records_hidden_time(self):
        t = VirtualTimeline(ranks=2)
        t.overlapped("tran", comm_seconds=1.0, hideable_per_rank=0.4)
        phase = t.phases[-1]
        assert phase.kind == "overlap"
        assert phase.hidden_time == pytest.approx(0.4)

    def test_phase_breakdown_accumulates_by_name(self):
        t = VirtualTimeline(ranks=2)
        t.compute("fft", 1.0)
        t.compute("fft", 0.5)
        t.communicate("tran", 0.2)
        breakdown = t.phase_breakdown()
        assert breakdown["fft"] == pytest.approx(1.5)
        assert t.total_of_kind("comm") == pytest.approx(0.2)

    def test_wrong_length_per_rank_vector_rejected(self):
        t = VirtualTimeline(ranks=3)
        with pytest.raises(ValueError):
            t.compute("x", [1.0, 2.0])

    def test_non_positive_ranks_rejected(self):
        with pytest.raises(ValueError):
            VirtualTimeline(ranks=0)

    def test_report_lists_phases(self):
        t = VirtualTimeline(ranks=2)
        t.compute("fft", 1.0)
        text = t.report()
        assert "fft" in text and "virtual time" in text

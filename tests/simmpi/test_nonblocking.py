"""Tests for the non-blocking engine used by the Algorithm 3 schedule."""

import numpy as np

from repro.simmpi.nonblocking import NonBlockingEngine, Request


class TestNonBlockingEngine:
    def test_send_then_receive_delivers_payload(self):
        engine = NonBlockingEngine()
        payload = np.arange(4, dtype=complex)
        engine.isend(payload, source=0, dest=1, tag=7)
        request = engine.irecv(source=0, dest=1, tag=7)
        assert np.allclose(engine.wait(request), payload)

    def test_receive_posted_before_send_still_delivers(self):
        engine = NonBlockingEngine()
        request = engine.irecv(source=0, dest=1, tag=3)
        engine.isend(np.ones(2, dtype=complex), source=0, dest=1, tag=3)
        assert np.allclose(engine.wait(request), 1.0)

    def test_payload_is_copied_at_send_time(self):
        engine = NonBlockingEngine()
        data = np.zeros(3, dtype=complex)
        engine.isend(data, source=0, dest=1)
        data[:] = 9
        request = engine.irecv(source=0, dest=1)
        assert np.allclose(engine.wait(request), 0.0)

    def test_outstanding_count(self):
        engine = NonBlockingEngine()
        r1 = engine.isend(np.ones(1, dtype=complex), source=0, dest=1, tag=0)
        r2 = engine.irecv(source=0, dest=1, tag=0)
        assert engine.outstanding == 2
        engine.wait(r1)
        engine.wait(r2)
        assert engine.outstanding == 0

    def test_log_work_attributes_to_outstanding_requests(self):
        engine = NonBlockingEngine()
        request = engine.isend(np.ones(1, dtype=complex), source=0, dest=1)
        engine.log_work("verify-block")
        engine.wait(request)
        assert "verify-block" in request.overlapped_work
        assert "verify-block" in engine.overlapped_work_items()

    def test_work_after_wait_not_attributed(self):
        engine = NonBlockingEngine()
        request = engine.isend(np.ones(1, dtype=complex), source=0, dest=1)
        engine.wait(request)
        engine.log_work("late")
        assert "late" not in request.overlapped_work

    def test_event_order_recorded(self):
        engine = NonBlockingEngine()
        engine.isend(np.ones(1, dtype=complex), source=0, dest=2, tag=1)
        request = engine.irecv(source=0, dest=2, tag=1)
        engine.wait(request)
        kinds = [e.split(":")[0] for e in engine.issued_events]
        assert kinds == ["isend", "irecv", "wait"]

    def test_request_wait_marks_completed(self):
        r = Request(tag=0, source=0, dest=1, payload=np.zeros(1, dtype=complex))
        r.wait()
        assert r.completed

"""Tests for the simulated communicator and distributed vectors."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.simmpi.comm import BlockChecksums, DistributedVector, SimCommunicator
from repro.core.checksums import memory_weights_classic


class TestDistributedVector:
    def test_round_trip_global_local(self, random_complex):
        x = random_complex(32)
        dist = DistributedVector.from_global(x, 4)
        assert dist.ranks == 4
        assert dist.local_size == 8
        assert np.allclose(dist.to_global(), x)

    def test_local_blocks_are_independent_copies(self, random_complex):
        x = random_complex(16)
        dist = DistributedVector.from_global(x, 4)
        dist.local(0)[0] = 999
        assert x[0] != 999

    def test_indivisible_size_rejected(self, random_complex):
        with pytest.raises(ValueError):
            DistributedVector.from_global(random_complex(10), 4)

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            DistributedVector([np.zeros(4, dtype=complex), np.zeros(5, dtype=complex)])

    def test_copy_is_deep(self, random_complex):
        dist = DistributedVector.from_global(random_complex(8), 2)
        clone = dist.copy()
        clone.local(0)[0] = 7
        assert dist.local(0)[0] != 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistributedVector([])


class TestBlockChecksums:
    def test_of_computes_weighted_sums(self, random_complex):
        block = random_complex(8)
        w1, w2 = memory_weights_classic(8)
        cs = BlockChecksums.of(block, w1, w2)
        assert np.isclose(cs.s1, np.sum(block))
        assert np.isclose(cs.s2, np.dot(np.arange(1, 9), block))


class TestTranspose:
    def test_transpose_is_block_matrix_transpose(self, random_complex):
        p, sub = 4, 3
        x = random_complex(p * p * sub)
        comm = SimCommunicator(p, protect_messages=False)
        dist = DistributedVector.from_global(x, p)
        out = comm.transpose(dist)
        # expected: out[r] = concat_j x_block[j][r]
        local = p * sub
        for r in range(p):
            expected = np.concatenate(
                [x[j * local + r * sub:j * local + (r + 1) * sub] for j in range(p)]
            )
            assert np.allclose(out.local(r), expected)

    def test_double_transpose_is_identity(self, random_complex):
        x = random_complex(64)
        comm = SimCommunicator(4)
        dist = DistributedVector.from_global(x, 4)
        assert np.allclose(comm.transpose(comm.transpose(dist)).to_global(), x)

    def test_byte_accounting(self, random_complex):
        p = 4
        x = random_complex(64)
        comm = SimCommunicator(p, protect_messages=False)
        comm.transpose(DistributedVector.from_global(x, p))
        assert comm.bytes_sent == 64 * 16  # every element moves once
        assert comm.messages_sent == p * (p - 1)

    def test_checksum_overhead_counted(self, random_complex):
        p = 4
        x = random_complex(64)
        plain = SimCommunicator(p, protect_messages=False)
        protected = SimCommunicator(p, protect_messages=True)
        plain.transpose(DistributedVector.from_global(x, p))
        protected.transpose(DistributedVector.from_global(x, p))
        assert protected.bytes_sent == plain.bytes_sent + 32 * p * p

    def test_rank_mismatch_rejected(self, random_complex):
        comm = SimCommunicator(4)
        with pytest.raises(ValueError):
            comm.transpose(DistributedVector.from_global(random_complex(16), 2))

    def test_local_size_not_divisible_rejected(self, random_complex):
        comm = SimCommunicator(4)
        dist = DistributedVector.from_global(random_complex(12), 4)  # local 3, not divisible by 4
        with pytest.raises(ValueError):
            comm.transpose(dist)


class TestInTransitFaults:
    def test_corruption_is_repaired_when_protected(self, random_complex):
        p = 4
        x = random_complex(64)
        injector = FaultInjector().arm_memory(FaultSite.COMM_BLOCK, magnitude=50.0)
        comm = SimCommunicator(p, injector=injector, protect_messages=True)
        plain = SimCommunicator(p, protect_messages=False)
        got = comm.transpose(DistributedVector.from_global(x, p)).to_global()
        want = plain.transpose(DistributedVector.from_global(x, p)).to_global()
        assert injector.fired_count == 1
        assert comm.corrected_blocks == 1
        assert np.allclose(got, want, atol=1e-8)

    def test_corruption_persists_when_unprotected(self, random_complex):
        p = 4
        x = random_complex(64)
        injector = FaultInjector().arm_memory(FaultSite.COMM_BLOCK, magnitude=50.0)
        comm = SimCommunicator(p, injector=injector, protect_messages=False)
        plain = SimCommunicator(p, protect_messages=False)
        got = comm.transpose(DistributedVector.from_global(x, p)).to_global()
        want = plain.transpose(DistributedVector.from_global(x, p)).to_global()
        assert not np.allclose(got, want, atol=1e-8)

    def test_rank_targeted_fault(self, random_complex):
        p = 4
        injector = FaultInjector().arm_memory(FaultSite.COMM_BLOCK, rank=2, magnitude=10.0)
        comm = SimCommunicator(p, injector=injector, protect_messages=True)
        comm.transpose(DistributedVector.from_global(random_complex(64), p))
        assert injector.events[0].rank == 2

    def test_reset_counters(self, random_complex):
        comm = SimCommunicator(2)
        comm.transpose(DistributedVector.from_global(random_complex(16), 2))
        comm.reset_counters()
        assert comm.bytes_sent == 0 and comm.messages_sent == 0

    def test_bytes_per_rank_estimate(self):
        comm = SimCommunicator(4, protect_messages=True)
        estimate = comm.bytes_per_rank_per_transpose(64)
        assert estimate == (64 // 4) * 16 * 3 + 32 * 3

"""Shared fixtures for the test suite.

Package hygiene note
--------------------
The test tree deliberately contains duplicate module basenames
(``tests/core/test_properties.py`` and ``tests/fftlib/test_properties.py``),
so every test directory carries an ``__init__.py`` to give the modules
distinct package-qualified names.  Without those, pytest's rootdir-relative
imports collide ("import file mismatch") - and a stale ``__pycache__`` from
a pre-``__init__.py`` checkout can reproduce the same error; ``find tests
-name __pycache__ -exec rm -rf {} +`` clears it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RandomSource


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator (fresh per test)."""

    return np.random.default_rng(20170712)


@pytest.fixture
def source() -> RandomSource:
    """A deterministic :class:`RandomSource` (fresh per test)."""

    return RandomSource(seed=20170712)


@pytest.fixture
def random_complex(rng):
    """Factory producing random complex vectors of a requested size."""

    def make(n: int, scale: float = 1.0) -> np.ndarray:
        return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))

    return make


def assert_spectra_close(got, want, *, rtol_scale: float = 1e-9):
    """Assert two spectra agree to a relative infinity-norm tolerance."""

    got = np.asarray(got)
    want = np.asarray(want)
    denom = max(float(np.max(np.abs(want))), 1e-300)
    err = float(np.max(np.abs(got - want))) / denom
    assert err < rtol_scale, f"relative error {err:.3e} exceeds {rtol_scale:.1e}"


@pytest.fixture
def spectra_close():
    """Expose :func:`assert_spectra_close` as a fixture."""

    return assert_spectra_close

"""Fixture-driven tests for the reprolint invariant checker.

Each of the five rules is exercised both ways: a known-bad snippet must be
flagged (proving the rule fires) and the matching known-good snippet must
come back clean (proving the rule does not cry wolf).  On top of the
snippet fixtures, the guard-deletion tests rewrite the *real* cache-bearing
modules with their ``with <lock>:`` statements replaced by ``if True:`` -
the ISSUE's acceptance criterion that deleting any one lock guard around a
shared LRU mutation makes the lint fail - and the integration tests assert
the shipped tree itself scans clean through the public CLI.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_TOOLS = str(REPO_ROOT / "tools")
if _TOOLS not in sys.path:
    # front of the path so the tools/ package wins over the repo-root
    # ``reprolint.py`` launcher shim
    sys.path.insert(0, _TOOLS)

from reprolint.engine import FileContext, run_rule, scan_paths  # noqa: E402
from reprolint.rules import ALL_RULES, boundary, capability, frozen, hotpath, locks  # noqa: E402

HOT_REL = "src/repro/fftlib/executor.py"


def _rules(rule, source, rel=HOT_REL, extra_frozen=()):
    return run_rule(rule, textwrap.dedent(source), rel, extra_frozen=extra_frozen)


# ----------------------------------------------------------------------
# rule 1: hotpath-alloc
# ----------------------------------------------------------------------

class TestHotpathAlloc:
    def test_flags_numpy_constructor_in_hot_function(self):
        found = _rules(
            hotpath,
            """
            import numpy as np

            def execute(x):
                return np.empty(x.shape, dtype=np.complex128)
            """,
        )
        assert [v.rule for v in found] == ["hotpath-alloc"]
        assert "np.empty" in found[0].message

    def test_native_kernel_shim_is_a_hot_file(self):
        found = _rules(
            hotpath,
            """
            import numpy as np

            def execute(xs, out):
                staging = np.empty(out.shape, dtype=np.complex128)
                return staging
            """,
            rel="src/repro/fftlib/native/kernels.py",
        )
        assert [v.rule for v in found] == ["hotpath-alloc"]

    def test_flags_copy_astype_and_loop_literals(self):
        found = _rules(
            hotpath,
            """
            def transform_rows(rows):
                y = rows.copy()
                z = y.astype(complex)
                for row in z:
                    parts = [row]
                return parts
            """,
        )
        kinds = sorted(v.message.split(" in hot")[0] for v in found)
        assert len(found) == 3
        assert any(".copy" in k for k in kinds)
        assert any(".astype" in k for k in kinds)
        assert any("list literal" in k for k in kinds)

    def test_hot_suffixes_are_hot_and_literals_outside_loops_are_fine(self):
        found = _rules(
            hotpath,
            """
            import numpy as np

            def scatter_overwrite(buf):
                index = [slice(None)] * buf.ndim  # literal outside a loop: fine
                return np.concatenate([buf, buf])
            """,
        )
        assert [v.rule for v in found] == ["hotpath-alloc"]
        assert "np.concatenate" in found[0].message

    def test_non_hot_function_and_non_hot_file_are_exempt(self):
        snippet = """
        import numpy as np

        def build_tables(n):
            return np.zeros(n), [k for k in range(n)]
        """
        assert _rules(hotpath, snippet) == []
        hot_in_cold_file = """
        import numpy as np

        def execute(x):
            return np.zeros_like(x)
        """
        assert _rules(hotpath, hot_in_cold_file, rel="src/repro/perfmodel/opcounts.py") == []

    def test_waiver_silences_including_comment_block_above(self):
        found = _rules(
            hotpath,
            """
            import numpy as np

            def execute(x):
                y = np.empty(3)  # reprolint: alloc-ok - result buffer
                # reprolint: alloc-ok - two-line justification for the
                # allocation on the statement right below
                z = np.zeros(3)
                return y, z
            """,
        )
        assert found == []

    def test_sanctioned_scratch_helper_calls_are_clean(self):
        found = _rules(
            hotpath,
            """
            def execute_into(data, work):
                a, b = _work_buffers(data.size)
                scratch = _stockham_scratch(data.size // 2)
                return a, b, scratch
            """,
        )
        assert found == []

    def test_flags_unguarded_telemetry_emit_in_hot_function(self):
        found = _rules(
            hotpath,
            """
            from repro.telemetry import trace as _trace

            def execute(x):
                _trace.emit("stage-done", n=x.size)
                return x
            """,
        )
        assert [v.rule for v in found] == ["hotpath-alloc"]
        assert "unguarded telemetry emit" in found[0].message

    def test_guarded_emit_and_cold_function_emit_are_clean(self):
        guarded = """
        from repro.telemetry import trace as _trace

        def execute(x):
            if _trace.active:
                _trace.emit("stage-done", n=x.size)
            return x
        """
        assert _rules(hotpath, guarded) == []
        cold = """
        from repro.telemetry import trace as _trace

        def build(x):
            _trace.emit("compiled", n=x.size)
            return x
        """
        assert _rules(hotpath, cold) == []

    def test_emit_in_else_branch_of_active_guard_is_flagged(self):
        found = _rules(
            hotpath,
            """
            from repro.telemetry import trace as _trace

            def transform_rows(rows):
                if _trace.active:
                    _trace.emit("on", rows=len(rows))
                else:
                    _trace.emit("off", rows=len(rows))
                return rows
            """,
        )
        assert [v.rule for v in found] == ["hotpath-alloc"]
        assert "unguarded telemetry emit" in found[0].message


# ----------------------------------------------------------------------
# rule 2: lock-discipline
# ----------------------------------------------------------------------

MODULE_CACHE = """
import threading
from collections import OrderedDict

_cache_lock = threading.RLock()
_programs = OrderedDict()
_hits = 0

def cached(key, build):
    global _hits
    {mutation_block}
"""

GOOD_MUTATIONS = """with _cache_lock:
        _programs[key] = build()
        _programs.move_to_end(key)
        _hits += 1
    return _programs[key]"""

BAD_MUTATIONS = """_programs[key] = build()
    _programs.move_to_end(key)
    _hits += 1
    return _programs[key]"""


class TestLockDiscipline:
    def test_unlocked_module_cache_mutations_flagged(self):
        found = _rules(locks, MODULE_CACHE.format(mutation_block=BAD_MUTATIONS))
        assert len(found) == 3  # subscript store, move_to_end, counter +=
        assert {v.rule for v in found} == {"lock-discipline"}
        assert any("_programs" in v.message for v in found)
        assert any("_hits" in v.message for v in found)

    def test_locked_module_cache_is_clean(self):
        assert _rules(locks, MODULE_CACHE.format(mutation_block=GOOD_MUTATIONS)) == []

    def test_module_without_lock_is_out_of_scope(self):
        found = _rules(
            locks,
            """
            _registry = {}

            def register(name, value):
                _registry[name] = value
            """,
        )
        assert found == []

    def test_unlocked_class_counter_and_container_flagged(self):
        found = _rules(
            locks,
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._tasks = []
                    self._submitted = 0

                def submit(self, task):
                    self._tasks.append(task)
                    self._submitted += 1
            """,
        )
        assert len(found) == 2
        assert all(v.rule == "lock-discipline" for v in found)

    def test_locked_class_and_dataclass_field_declarations(self):
        found = _rules(
            locks,
            """
            import threading
            from dataclasses import dataclass, field
            from typing import Dict

            @dataclass
            class Planner:
                wisdom: Dict[str, object] = field(default_factory=dict)
                _lock: threading.Lock = field(default_factory=threading.Lock)

                def remember(self, key, plan):
                    with self._lock:
                        self.wisdom[key] = plan

                def forget(self):
                    self.wisdom.clear()
            """,
        )
        assert [v.message.split(" of ")[0] for v in found] == [".clear(...) call"]

    def test_waiver_allows_documented_unlocked_access(self):
        found = _rules(
            locks,
            """
            import threading

            _lock = threading.Lock()
            _stats = {}

            def reset_for_tests():
                _stats.clear()  # reprolint: lock-ok - test-only, single-threaded
            """,
        )
        assert found == []


GUARDED_FILES = [
    ("src/repro/fftlib/executor.py", "with _cache_lock:"),
    ("src/repro/core/ftplan.py", "with _cache_lock:"),
    ("src/repro/fftlib/twiddle.py", "with self._lock:"),
    ("src/repro/runtime/pool.py", "with self._lock:"),
    ("src/repro/fftlib/backends.py", "with _LOCK:"),
    ("src/repro/fftlib/planner.py", "with self._lock:"),
]


class TestGuardDeletionOnRealModules:
    """Deleting any lock guard around shared-cache mutations fails the lint."""

    @pytest.mark.parametrize("rel,guard", GUARDED_FILES, ids=[f[0] for f in GUARDED_FILES])
    def test_removing_every_guard_fires(self, rel, guard):
        source = (REPO_ROOT / rel).read_text(encoding="utf-8")
        assert guard in source, f"expected {guard!r} in {rel}"
        unlocked = source.replace(guard, "if True:")
        assert run_rule(locks, unlocked, rel), f"{rel}: removing {guard!r} went undetected"

    @pytest.mark.parametrize("rel,guard", GUARDED_FILES, ids=[f[0] for f in GUARDED_FILES])
    def test_removing_any_single_guard_fires(self, rel, guard):
        """Differential check, one guard at a time.

        Some ``with lock:`` blocks guard only *reads* (counter snapshots,
        registry lookups) - the rule rightly stays quiet when those are
        un-guarded.  So: take the violation lines of the everything-removed
        variant as ground truth, and assert each single-guard removal fires
        exactly the subset of those lines inside its block - in particular,
        every block that mutates shared LRU/counter state must fire.
        """

        import ast as ast_mod

        source = (REPO_ROOT / rel).read_text(encoding="utf-8")
        spans = []
        for node in ast_mod.walk(ast_mod.parse(source)):
            if isinstance(node, ast_mod.With):
                if f"with {ast_mod.unparse(node.items[0].context_expr)}:" == guard:
                    spans.append((node.lineno, node.end_lineno))
        spans.sort()
        assert len(spans) == source.count(guard)
        truth = {
            v.line for v in run_rule(locks, source.replace(guard, "if True:"), rel)
        }
        assert truth, f"{rel}: removing every {guard!r} produced no violations"
        mutating_blocks = 0
        for index, (first, last) in enumerate(spans):
            pieces = source.split(guard)
            mutated = ""
            for i, piece in enumerate(pieces):
                mutated += piece
                if i < len(pieces) - 1:
                    mutated += "if True:" if i == index else guard
            got = {v.line for v in run_rule(locks, mutated, rel)}
            expected = {line for line in truth if first <= line <= last}
            assert got == expected, (
                f"{rel}: occurrence {index} of {guard!r} expected lines "
                f"{sorted(expected)}, got {sorted(got)}"
            )
            if expected:
                mutating_blocks += 1
        assert mutating_blocks, f"{rel}: no {guard!r} block guards a mutation"

    @pytest.mark.parametrize("rel,guard", GUARDED_FILES, ids=[f[0] for f in GUARDED_FILES])
    def test_shipped_module_is_clean(self, rel, guard):
        source = (REPO_ROOT / rel).read_text(encoding="utf-8")
        assert run_rule(locks, source, rel) == []


# ----------------------------------------------------------------------
# rule 3: frozen-object
# ----------------------------------------------------------------------

FROZEN_PREAMBLE = """
from dataclasses import dataclass, replace

@dataclass(frozen=True)
class FTConfig:
    n: int = 0
"""


class TestFrozenObject:
    def test_assignment_on_constructed_instance_flagged(self):
        found = _rules(
            frozen,
            FROZEN_PREAMBLE
            + textwrap.dedent(
                """
                def tweak():
                    cfg = FTConfig(n=4)
                    cfg.n = 8
                    return cfg
                """
            ),
        )
        assert [v.rule for v in found] == ["frozen-object"]
        assert "FTConfig" in found[0].message

    def test_annotated_parameter_and_replace_results_tracked(self):
        found = _rules(
            frozen,
            FROZEN_PREAMBLE
            + textwrap.dedent(
                """
                def tweak(cfg: FTConfig):
                    other = replace(cfg, n=16)
                    other.n = 32
                """
            ),
        )
        assert len(found) == 1 and "other.n" in found[0].message

    def test_classmethod_constructor_tracked_across_files(self):
        found = _rules(
            frozen,
            """
            def build():
                cfg = FTConfig.from_name("online")
                cfg.scheme = "offline"
            """,
            extra_frozen={"FTConfig"},
        )
        assert len(found) == 1

    def test_object_setattr_outside_frozen_methods_flagged(self):
        found = _rules(
            frozen,
            FROZEN_PREAMBLE
            + textwrap.dedent(
                """
                def sneak(cfg: FTConfig):
                    object.__setattr__(cfg, "n", 99)
                """
            ),
        )
        assert [v.rule for v in found] == ["frozen-object"]
        assert "__setattr__" in found[0].message

    def test_own_post_init_setattr_is_allowed(self):
        found = _rules(
            frozen,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Plan:
                n: int = 0

                def __post_init__(self):
                    object.__setattr__(self, "n", int(self.n))
            """,
        )
        assert found == []

    def test_pytest_raises_blocks_are_exempt(self):
        found = _rules(
            frozen,
            FROZEN_PREAMBLE
            + textwrap.dedent(
                """
                import pytest

                def test_frozen():
                    cfg = FTConfig(n=4)
                    with pytest.raises(Exception):
                        cfg.n = 8
                """
            ),
        )
        assert found == []

    def test_rebinding_a_holder_attribute_is_not_mutation(self):
        found = _rules(
            frozen,
            FROZEN_PREAMBLE
            + textwrap.dedent(
                """
                def swap(holder):
                    holder.config = FTConfig(n=4)  # holder is not frozen
                    return replace(holder.config, n=8)
                """
            ),
        )
        assert found == []


# ----------------------------------------------------------------------
# rule 4: capability-guard
# ----------------------------------------------------------------------

class TestCapabilityGuard:
    def test_unguarded_stockham_lowering_flagged(self):
        found = _rules(
            capability,
            """
            def lower(n):
                return get_stockham_program(n)
            """,
            rel="src/repro/fftlib/planner.py",
        )
        assert [v.rule for v in found] == ["capability-guard"]
        assert "get_stockham_program" in found[0].message

    def test_supported_guard_and_closure_inheritance(self):
        found = _rules(
            capability,
            """
            def lower(n):
                if not stockham_supported(n):
                    return None
                program = get_stockham_program(n)

                def run(buf):
                    return program.execute_inplace(buf)

                return run
            """,
            rel="src/repro/fftlib/planner.py",
        )
        assert found == []

    def test_unguarded_threaded_program_flagged_and_guard_accepted(self):
        bad = _rules(
            capability,
            """
            def lower(n, t):
                return get_threaded_program(n, t)
            """,
            rel="src/repro/fftlib/planner.py",
        )
        assert len(bad) == 1 and "get_threaded_program" in bad[0].message
        good = _rules(
            capability,
            """
            def lower(n, t):
                if not threading_profitable(n, t):
                    return None
                return get_threaded_program(n, t)
            """,
            rel="src/repro/fftlib/planner.py",
        )
        assert good == []

    def test_hasattr_and_is_none_checks_count_as_guards(self):
        found = _rules(
            capability,
            """
            def run(program, buf):
                if hasattr(program, "execute_inplace"):
                    return program.execute_inplace(buf)
                return program.execute(buf)

            class Plan:
                def __init__(self, n):
                    self._stockham = get_stockham_program(n) if stockham_supported(n) else None

                def overwrite(self, buf):
                    if self._stockham is not None:
                        return self._stockham.execute_inplace(buf)
                    return buf
            """,
            rel="src/repro/fftlib/plan.py",
        )
        assert found == []

    def test_own_method_calls_are_exempt(self):
        found = _rules(
            capability,
            """
            import numpy as np

            class StockhamStageProgram:
                def execute_inplace(self, buf):
                    return buf

                def execute(self, x):
                    out = x + 0
                    return self.execute_inplace(out)
            """,
            rel="src/repro/fftlib/executor.py",
        )
        assert found == []

    def test_unguarded_native_kernels_flagged_and_guard_accepted(self):
        bad = _rules(
            capability,
            """
            def bind(program):
                return get_native_kernels()
            """,
            rel="src/repro/fftlib/native/kernels.py",
        )
        assert len(bad) == 1 and "get_native_kernels" in bad[0].message
        good = _rules(
            capability,
            """
            def bind(program):
                if not native_supported():
                    return None
                return get_native_kernels()

            def bind_via_backend(backend):
                if not backend.supports_native:
                    return None
                return get_native_kernels()
            """,
            rel="src/repro/fftlib/executor.py",
        )
        assert good == []

    def test_tests_and_benchmarks_are_out_of_scope(self):
        snippet = """
        def poke(n):
            return get_stockham_program(n)
        """
        assert _rules(capability, snippet, rel="tests/fftlib/test_inplace.py") == []
        assert _rules(capability, snippet, rel="benchmarks/bench_speedup.py") == []


# ----------------------------------------------------------------------
# rule 5: fft-boundary
# ----------------------------------------------------------------------

class TestFFTBoundary:
    def test_np_fft_use_in_src_flagged(self):
        found = _rules(
            boundary,
            """
            import numpy as np

            def reference(x):
                return np.fft.fft(x)
            """,
            rel="src/repro/cli.py",
        )
        assert [v.rule for v in found] == ["fft-boundary"]

    def test_numpy_fft_imports_flagged(self):
        found = _rules(
            boundary,
            """
            import numpy.fft
            from numpy import fft
            from numpy.fft import rfft
            """,
            rel="src/repro/utils/reporting.py",
        )
        assert len(found) == 3

    def test_backends_and_tests_are_allowed(self):
        snippet = """
        import numpy as np

        def oracle(x):
            return np.fft.fft(x)
        """
        assert _rules(boundary, snippet, rel="src/repro/fftlib/backends.py") == []
        assert _rules(boundary, snippet, rel="tests/fftlib/test_executor.py") == []

    def test_waiver_for_benchmark_oracles(self):
        found = _rules(
            boundary,
            """
            import numpy as np

            def reference(x):
                return np.fft.fft(x)  # reprolint: fft-ok - raw reference oracle
            """,
            rel="benchmarks/bench_fig8a_strong_scaling.py",
        )
        assert found == []

    def test_scipy_fft_is_not_numpy_fft(self):
        found = _rules(
            boundary,
            """
            import scipy

            def reference(x):
                return scipy.fft.fft(x)
            """,
            rel="src/repro/perfmodel/opcounts.py",
        )
        assert found == []


# ----------------------------------------------------------------------
# integration: the shipped tree and the CLI
# ----------------------------------------------------------------------

class TestIntegration:
    def test_shipped_tree_scans_clean(self):
        violations = scan_paths(["src", "tests", "benchmarks"], root=REPO_ROOT)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exits_zero_on_tree_and_one_on_violation(self, tmp_path, capsys):
        from reprolint.cli import main

        assert main(["--root", str(REPO_ROOT), "src", "tests", "benchmarks"]) == 0
        capsys.readouterr()
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        bad_file = bad / "offender.py"
        bad_file.write_text(
            "import numpy as np\n\ndef reference(x):\n    return np.fft.fft(x)\n"
        )
        assert main(["--root", str(tmp_path), str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "fft-boundary" in out

    def test_cli_lists_all_five_rules(self, capsys):
        from reprolint.cli import main

        assert main(["--list-rules"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == [
            "hotpath-alloc",
            "lock-discipline",
            "frozen-object",
            "capability-guard",
            "fft-boundary",
        ]

    def test_parse_error_is_reported_not_crashed(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        violations = scan_paths([str(bad)], root=tmp_path)
        assert [v.rule for v in violations] == ["parse-error"]

    def test_every_rule_module_declares_rule_and_waiver(self):
        for rule in ALL_RULES:
            assert rule.RULE
            assert rule.WAIVER.endswith("-ok")

    def test_waiver_parsing_handles_lists_and_blocks(self):
        ctx = FileContext.from_source(
            "x = 1  # reprolint: alloc-ok, lock-ok - shared justification\n"
        )
        assert ctx.waivers[1] == {"alloc-ok", "lock-ok"}

"""Tests for the ``tools/`` static-analysis packages (reprolint)."""

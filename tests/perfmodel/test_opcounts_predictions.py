"""Tests for the Section 7 operation-count model and predictions."""

import numpy as np
import pytest

from repro.perfmodel.opcounts import (
    COMPLEX_ADD_OPS,
    COMPLEX_DIV_OPS,
    COMPLEX_MUL_OPS,
    communication_overhead_ratio,
    fft_operations,
    offline_scheme_ops,
    online_scheme_ops,
    parallel_scheme_ops,
    parallel_space_overhead_ratio,
    sequential_space_overhead,
)
from repro.perfmodel.predictions import predict_parallel, predict_sequential
from repro.simmpi.machine import TIANHE2_LIKE


class TestConstantsAndBaseline:
    def test_paper_unit_costs(self):
        assert COMPLEX_MUL_OPS == 6
        assert COMPLEX_ADD_OPS == 2
        assert COMPLEX_DIV_OPS == 11

    def test_fft_operations_formula(self):
        assert fft_operations(2**20) == pytest.approx(5 * 2**20 * 20)
        assert fft_operations(1) == 0.0


class TestSequentialCounts:
    def test_offline_fault_free_is_37n(self):
        n = 2**20
        assert offline_scheme_ops(n).fault_free == pytest.approx(37 * n)

    def test_offline_with_memory_is_41n(self):
        n = 2**20
        assert offline_scheme_ops(n, memory_ft=True).fault_free == pytest.approx(41 * n)

    def test_online_fault_free_is_32n(self):
        n = 2**20
        assert online_scheme_ops(n).fault_free == pytest.approx(32 * n)

    def test_online_with_memory_is_46n(self):
        n = 2**20
        assert online_scheme_ops(n, memory_ft=True).fault_free == pytest.approx(46 * n)

    def test_offline_error_cost_includes_full_restart(self):
        n = 2**20
        counts = offline_scheme_ops(n)
        assert counts.with_error > counts.fault_free + fft_operations(n)

    def test_online_error_cost_is_nearly_unchanged(self):
        n = 2**20
        counts = online_scheme_ops(n, memory_ft=True)
        assert counts.with_error < counts.fault_free * 1.01

    def test_online_cheaper_than_offline_without_memory(self):
        n = 2**25
        assert online_scheme_ops(n).fault_free < offline_scheme_ops(n).fault_free

    def test_ratio_decreases_with_size(self):
        small = online_scheme_ops(2**16)
        large = online_scheme_ops(2**26)
        assert large.fault_free_ratio < small.fault_free_ratio

    def test_paper_scale_overhead_percentages(self):
        """At 2^25 the model should land near the paper's Fig. 7 bars."""

        n = 2**25
        assert 20 < 100 * online_scheme_ops(n).fault_free_ratio < 35
        assert 25 < 100 * offline_scheme_ops(n).fault_free_ratio < 40
        assert 30 < 100 * online_scheme_ops(n, memory_ft=True).fault_free_ratio < 45


class TestParallelCounts:
    def test_r1_before_and_after_overlap(self):
        n = 2**20
        assert parallel_scheme_ops(n).fault_free == pytest.approx(96 * n)
        assert parallel_scheme_ops(n, overlap=True).fault_free == pytest.approx(56 * n)

    def test_r_not_one_formula(self):
        n = 2**20
        expected = 116 * n + 5 * n * np.log2(8)
        assert parallel_scheme_ops(n, r=8).fault_free == pytest.approx(expected)
        assert parallel_scheme_ops(n, r=8, overlap=True).fault_free == pytest.approx(
            expected - 40 * n
        )

    def test_space_and_communication_overheads(self):
        assert sequential_space_overhead(2**20) == 8 * 1024
        assert parallel_space_overhead_ratio(256) == pytest.approx(6 / 256)
        assert communication_overhead_ratio(2**23, 256) == pytest.approx(2 * 256 / 2**23)


class TestPredictions:
    def test_sequential_prediction_ordering(self):
        preds = {p.scheme: p for p in predict_sequential(2**25)}
        assert preds["opt-online"].overhead_percent < preds["opt-offline"].overhead_percent
        assert preds["opt-online+mem"].overhead_percent > preds["opt-online"].overhead_percent

    def test_sequential_prediction_error_costs(self):
        preds = {p.scheme: p for p in predict_sequential(2**25)}
        # offline pays ~2x when an error occurs, online does not (Table 1 shape)
        assert preds["opt-offline"].overhead_percent_with_error > 100
        assert preds["opt-online"].overhead_percent_with_error < 50

    def test_predicted_seconds_track_machine_rate(self):
        preds = predict_sequential(2**25, schemes=["opt-online"], machine=TIANHE2_LIKE)
        assert preds[0].predicted_seconds == pytest.approx(
            TIANHE2_LIKE.compute_time(fft_operations(2**25) + 32 * 2**25)
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            predict_sequential(1024, schemes=["bogus"])

    def test_parallel_prediction_overlap_is_cheaper(self):
        preds = predict_parallel(2**26, 256)
        assert (
            preds["parallel-opt-ft-fftw"].predicted_seconds
            < preds["parallel-ft-fftw"].predicted_seconds
        )

    def test_parallel_prediction_ratios(self):
        preds = predict_parallel(2**30, 256)
        local = 2**30 // 256
        base = fft_operations(2**30) / 256
        assert preds["parallel-ft-fftw"].overhead_ratio == pytest.approx(96 * local / base)

"""Unit tests for the telemetry subsystem: trace ring, metrics registry,
Prometheus export, profile formatting, and the top-level info surfaces."""

import json
import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.telemetry import trace
from repro.telemetry.metrics import Registry
from repro.telemetry.profile import ProfileEntry, ProfileResult


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled and the ring empty."""

    telemetry.disable_trace()
    telemetry.clear_events()
    yield
    telemetry.disable_trace()
    telemetry.clear_events()


class TestTrace:
    def test_disabled_by_default(self):
        assert trace.active is False
        assert telemetry.trace_path() is None

    def test_enable_disable_toggles_gate(self):
        telemetry.enable_trace()
        assert trace.active is True
        telemetry.disable_trace()
        assert trace.active is False

    def test_events_land_in_ring(self):
        telemetry.enable_trace()
        telemetry.emit("unit-test", value=7)
        records = telemetry.events("unit-test")
        assert len(records) == 1
        assert records[0]["value"] == 7
        assert records[0]["event"] == "unit-test"
        assert "seq" in records[0] and "ts" in records[0]

    def test_kind_filter(self):
        telemetry.enable_trace()
        telemetry.emit("alpha")
        telemetry.emit("beta")
        assert [r["event"] for r in telemetry.events("beta")] == ["beta"]
        assert len(telemetry.events()) == 2

    def test_event_may_carry_its_own_kind_field(self):
        # the `fallback` events do: emit's first parameter is positional-only
        telemetry.enable_trace()
        telemetry.emit("fallback", kind="native", reason="no compiler")
        record = telemetry.events("fallback")[0]
        assert record["kind"] == "native"

    def test_ring_is_bounded(self):
        telemetry.enable_trace(ring_capacity=4)
        for i in range(10):
            telemetry.emit("tick", i=i)
        records = telemetry.events("tick")
        assert len(records) == 4
        assert [r["i"] for r in records] == [6, 7, 8, 9]

    def test_clear_events(self):
        telemetry.enable_trace()
        telemetry.emit("x")
        telemetry.clear_events()
        assert telemetry.events() == []

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry.enable_trace(str(path))
        assert telemetry.trace_path() == str(path)
        telemetry.emit("sink-test", n=4096)
        telemetry.disable_trace()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "sink-test"
        assert record["n"] == 4096
        assert telemetry.trace_path() is None

    def test_non_json_fields_are_stringified(self, tmp_path):
        path = tmp_path / "events.jsonl"
        telemetry.enable_trace(str(path))
        telemetry.emit("odd", arr=np.arange(3))
        telemetry.disable_trace()
        record = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(record["arr"], str)


class TestRegistry:
    def test_inc_and_merge_labels(self):
        reg = Registry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.inc("faults", site="input", scheme="online")
        reg.inc("faults", scheme="online", site="input")  # label order irrelevant
        merged = reg.counters()
        assert merged[("hits", ())] == 3
        assert merged[("faults", (("scheme", "online"), ("site", "input")))] == 2

    def test_counters_merge_across_threads(self):
        reg = Registry()

        def worker():
            for _ in range(1000):
                reg.inc("shared", worker="yes")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counters()[("shared", (("worker", "yes"),))] == 8000

    def test_gauges(self):
        reg = Registry()
        reg.set_gauge("depth", 3)
        assert reg.gauges() == {"depth": 3.0}

    def test_collector_error_is_isolated(self):
        reg = Registry()

        def broken():
            raise RuntimeError("down")

        reg.register_collector("broken", broken)
        reg.register_collector("fine", lambda: {"ok": 1})
        surfaces = reg.collect()
        assert surfaces["fine"] == {"ok": 1}
        assert "RuntimeError" in surfaces["broken"]["error"]

    def test_snapshot_shape(self):
        reg = Registry()
        reg.inc("c", kind="a")
        reg.set_gauge("g", 1.5)
        reg.register_collector("surf", lambda: {"size": 2})
        snap = reg.snapshot()
        assert snap["counters"] == {'c{kind="a"}': 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["caches"] == {"surf": {"size": 2}}
        json.loads(reg.to_json())  # snapshot must be JSON-serializable

    def test_reset_zeroes_counters_keeps_collectors(self):
        reg = Registry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.register_collector("surf", lambda: {"size": 2})
        reg.reset()
        assert reg.counters() == {}
        assert reg.gauges() == {}
        assert reg.collect() == {"surf": {"size": 2}}

    def test_render_prometheus_format(self):
        reg = Registry()
        reg.inc("plan_hits", backend="fftlib")
        reg.set_gauge("workers", 4)
        reg.register_collector("pool", lambda: {"size": 2, "running": True})
        text = reg.render_prometheus()
        assert "# TYPE repro_plan_hits_total counter" in text
        assert 'repro_plan_hits_total{backend="fftlib"} 1' in text
        assert "# TYPE repro_workers gauge" in text
        assert "repro_workers 4.0" in text
        assert "repro_pool_size 2" in text
        assert "repro_pool_running 1" in text  # bools coerce to ints
        assert text.endswith("\n")


class TestProcessWideSurfaces:
    def test_snapshot_folds_every_info_surface(self):
        caches = telemetry.snapshot()["caches"]
        assert {"plan_cache", "program_cache", "twiddle_cache", "pool", "native"} <= set(caches)
        for surface in caches.values():
            assert "error" not in surface, surface

    def test_native_cache_info_matches_snapshot_surface(self):
        info = repro.native_cache_info()
        assert isinstance(info, dict)
        assert set(info) == set(telemetry.snapshot()["caches"]["native"])

    def test_execute_records_abft_counters(self):
        n = 256
        p = repro.plan(n)
        x = np.random.default_rng(3).standard_normal(n) + 0j
        before = sum(
            v for (name, _), v in telemetry.counters().items()
            if name == "abft_verifications"
        )
        report = p.execute(x).report
        after = sum(
            v for (name, _), v in telemetry.counters().items()
            if name == "abft_verifications"
        )
        assert after - before == report.counters.get("verifications", 0)
        assert report.counters.get("verifications", 0) >= 1


class TestProfile:
    def test_format_lists_entries_and_total(self):
        result = ProfileResult(
            n=8,
            description="toy",
            entries=(ProfileEntry("alpha", 0.75), ProfileEntry("beta", 0.25)),
            total_seconds=1.0,
            output=None,
        )
        text = result.format()
        assert "toy" in text
        assert "alpha" in text and "beta" in text
        assert "75.0%" in text and "25.0%" in text

    def test_plan_profile_entries_sum_to_total(self):
        from repro.fftlib.planner import plan_fft

        n = 256
        p = plan_fft(n)
        x = np.random.default_rng(5).standard_normal(n) + 0j
        p.execute(x)  # warm caches before the timed run
        result = p.profile(x)
        assert result.n == n
        assert result.entries, "compiled plans must expose per-stage entries"
        assert sum(e.seconds for e in result.entries) == pytest.approx(
            result.total_seconds, rel=1e-6
        )
        np.testing.assert_allclose(result.output, np.fft.fft(x), rtol=1e-8, atol=1e-8)

    def test_ftplan_profile_includes_protection_phases(self):
        n = 256
        p = repro.plan(n)
        x = np.random.default_rng(7).standard_normal(n) + 0j
        p.execute(x)
        result = p.profile(x)
        labels = " ".join(e.label for e in result.entries)
        assert "verification" in labels or "protection" in labels or "protected" in labels
        assert sum(e.seconds for e in result.entries) == pytest.approx(
            result.total_seconds, rel=1e-6
        )
        np.testing.assert_allclose(result.output, np.fft.fft(x), rtol=1e-8, atol=1e-8)


class TestConcurrentExecuteCounters:
    def test_counters_from_concurrent_workers_merge_exactly(self):
        """8 concurrent execute_many workers: the merged registry delta for
        ``abft_verifications`` equals the sum of the per-report
        ``verifications`` counters - the sharded registry loses nothing
        under contention."""

        n = 256
        workers = 8
        iterations = 5
        p = repro.plan(n)
        rng = np.random.default_rng(11)
        X = rng.standard_normal((4, n)) + 0j
        p.execute_many(X)  # warm plan/program caches outside the timed region

        def delta_basis():
            return sum(
                v for (name, _), v in telemetry.counters().items()
                if name == "abft_verifications"
            )

        before = delta_basis()
        reports = []
        reports_lock = threading.Lock()
        barrier = threading.Barrier(workers)

        def worker():
            barrier.wait()
            local = []
            for _ in range(iterations):
                local.append(p.execute_many(X.copy()).report)
            with reports_lock:
                reports.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        expected = sum(r.counters.get("verifications", 0) for r in reports)
        assert expected == workers * iterations * len(X)
        assert delta_basis() - before == expected

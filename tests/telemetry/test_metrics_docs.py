"""Anti-rot check: ``docs/metrics.md`` vs the live telemetry vocabulary.

The reference tables in ``docs/metrics.md`` must name *exactly* the
counters, gauges, collector surfaces, and trace events the source tree can
emit.  Both directions are enforced: an undocumented name fails (new
telemetry ships with its documentation), and a documented name that no
longer exists fails (the docs cannot describe ghosts).

The live vocabulary is recovered by walking the AST of every module under
``src/`` for literal first arguments to ``inc`` / ``set_gauge`` /
``register_collector`` / ``emit`` calls - the same shapes reprolint
checks, so dynamically-computed metric names (there are none, by
convention) would be a lint conversation first.
"""

import ast
import re
from pathlib import Path
from typing import Dict, Set

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC_ROOT = REPO_ROOT / "src"
DOC_PATH = REPO_ROOT / "docs" / "metrics.md"

#: docs/metrics.md section heading -> vocabulary bucket
SECTIONS = {
    "## Counters": "counters",
    "## Gauges": "gauges",
    "## Collector surfaces": "collectors",
    "## Trace events": "events",
}

_CALLS = {
    "inc": "counters",
    "set_gauge": "gauges",
    "register_collector": "collectors",
    "emit": "events",
}

_ROW = re.compile(r"^\|\s*`([a-z][a-z0-9_-]*)`")


def scan_source_vocabulary() -> Dict[str, Set[str]]:
    vocabulary: Dict[str, Set[str]] = {bucket: set() for bucket in _CALLS.values()}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            bucket = _CALLS.get(name)
            if bucket is None:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                vocabulary[bucket].add(first.value)
    return vocabulary


def parse_documented_vocabulary() -> Dict[str, Set[str]]:
    documented: Dict[str, Set[str]] = {bucket: set() for bucket in SECTIONS.values()}
    bucket = None
    for line in DOC_PATH.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            bucket = SECTIONS.get(line.strip())
            continue
        if bucket is None:
            continue
        match = _ROW.match(line)
        if match:
            documented[bucket].add(match.group(1))
    return documented


def test_docs_metrics_exists():
    assert DOC_PATH.exists(), "docs/metrics.md is part of the telemetry contract"


def test_every_live_name_is_documented():
    live = scan_source_vocabulary()
    documented = parse_documented_vocabulary()
    for bucket, names in live.items():
        missing = names - documented[bucket]
        assert not missing, (
            f"telemetry {bucket} missing from docs/metrics.md: {sorted(missing)} "
            f"- document them in the '{bucket}' table"
        )


def test_every_documented_name_is_live():
    live = scan_source_vocabulary()
    documented = parse_documented_vocabulary()
    for bucket, names in documented.items():
        stale = names - live[bucket]
        assert not stale, (
            f"docs/metrics.md documents {bucket} that no longer exist: {sorted(stale)} "
            f"- delete the rows (or restore the telemetry)"
        )


def test_doc_tables_are_nonempty():
    documented = parse_documented_vocabulary()
    assert documented["counters"], "the counters table parsed empty - check the headings"
    assert documented["collectors"], "the collector table parsed empty"
    assert documented["events"], "the trace-events table parsed empty"

"""Acceptance test: trace events bitwise-match a fault-injection campaign.

Runs the Table 6 methodology (n = 4096, one random high-bit flip per trial,
200 trials) with the JSONL trace sink enabled and asserts that the
``threshold-violation`` / ``repair`` / ``uncorrectable`` events in the file,
grouped per fault site, exactly equal the detection and correction tallies
the campaign's own FTReports recorded.  Both views come from the same
``record_*`` choke points in :class:`repro.core.detection.FTReport`, so any
drift means an execution path stopped funnelling through them.
"""

import json
from collections import Counter

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.faults.campaign import CoverageCampaign
from repro.faults.models import FaultKind, FaultSite, FaultSpec

N = 4096
TRIALS = 200
SITES = (FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT)


@pytest.fixture(autouse=True)
def _tracing_off():
    telemetry.disable_trace()
    telemetry.clear_events()
    yield
    telemetry.disable_trace()
    telemetry.clear_events()


def test_campaign_trace_counts_match_reports(tmp_path):
    plan = repro.plan(N)
    reports = []

    def make_input(trial, rng):
        return rng.standard_normal(N) + 1j * rng.standard_normal(N)

    def reference(x):
        return np.fft.fft(x)

    def make_faults(trial, rng):
        # one random high-bit flip (bits 50-62) per trial, cycling the
        # instrumented fault sites - always far above the thresholds
        return [
            FaultSpec(
                site=SITES[trial % len(SITES)],
                element=int(rng.integers(0, N)),
                kind=FaultKind.BIT_FLIP,
                bit=int(rng.integers(50, 63)),
            )
        ]

    def run_trial(x, injector):
        result = plan.execute(x, injector)
        reports.append(result.report)
        report = result.report
        return result.output, report.detected, report.corrected, report.has_uncorrectable

    campaign = CoverageCampaign(
        make_input=make_input,
        run_trial=run_trial,
        reference=reference,
        make_faults=make_faults,
        seed=17,
    )

    path = tmp_path / "campaign.jsonl"
    telemetry.enable_trace(str(path))
    try:
        result = campaign.run(TRIALS)
    finally:
        telemetry.disable_trace()

    assert result.trials == TRIALS
    assert len(reports) == TRIALS
    # high-bit flips are always detectable; the campaign must catch them all
    assert result.detection_rate == 1.0

    events = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]

    # per-site detections: one threshold-violation event per detected
    # verification record, bitwise equal
    traced_detections = Counter(
        e["site"] for e in events if e["event"] == "threshold-violation"
    )
    report_detections = Counter(
        v.site for r in reports for v in r.verifications if v.detected
    )
    assert traced_detections == report_detections
    assert sum(traced_detections.values()) > 0

    # per-site corrections: one repair event per correction record
    traced_repairs = Counter(e["site"] for e in events if e["event"] == "repair")
    report_repairs = Counter(c.site for r in reports for c in r.corrections)
    assert traced_repairs == report_repairs

    # uncorrectable outcomes line up too (usually zero for this fault model)
    traced_uncorrectable = sum(1 for e in events if e["event"] == "uncorrectable")
    report_uncorrectable = sum(len(r.uncorrectable) for r in reports)
    assert traced_uncorrectable == report_uncorrectable

"""Tests for Plan, Planner, and the layered decomposition plans."""

import numpy as np
import pytest

from repro.fftlib.inplace import InPlaceTwoLayerPlan
from repro.fftlib.plan import Plan, PlanDirection, PlanStrategy, estimate_flops
from repro.fftlib.planner import Planner, PlannerPolicy, get_default_planner, plan_fft
from repro.fftlib.three_layer import ThreeLayerPlan
from repro.fftlib.two_layer import TwoLayerDecomposition, TwoLayerPlan


class TestPlan:
    def test_forward_execution(self, random_complex, spectra_close):
        p = Plan(48)
        x = random_complex(48)
        spectra_close(p.execute(x), np.fft.fft(x))

    def test_backward_execution(self, random_complex, spectra_close):
        p = Plan(48, PlanDirection.BACKWARD)
        x = random_complex(48)
        spectra_close(p.execute(x), np.fft.ifft(x), rtol_scale=1e-8)

    def test_execute_batch_other_axis(self, random_complex, spectra_close):
        p = Plan(12)
        x = random_complex(12 * 5).reshape(12, 5)
        spectra_close(p.execute_batch(x, axis=0), np.fft.fft(x, axis=0))

    def test_size_mismatch_raises(self, random_complex):
        with pytest.raises(ValueError):
            Plan(8).execute(random_complex(9))

    def test_inverse_plan_flips_direction(self):
        p = Plan(16)
        assert p.inverse_plan().direction is PlanDirection.BACKWARD
        assert p.inverse_plan().inverse_plan().direction is PlanDirection.FORWARD

    def test_describe_mentions_size(self):
        assert "n=24" in Plan(24).describe()

    def test_flops_estimate_positive_and_monotone(self):
        assert estimate_flops(64) > estimate_flops(16) > 0

    def test_plan_is_hashable_and_frozen(self):
        p = Plan(8)
        assert hash(p) == hash(Plan(8))
        with pytest.raises(Exception):
            p.n = 9


class TestPlanner:
    def test_wisdom_caches_plans(self):
        planner = Planner()
        assert planner.plan(32) is planner.plan(32)

    def test_heuristic_strategies(self):
        planner = Planner()
        assert planner.plan(8).strategy is PlanStrategy.CODELET
        assert planner.plan(13).strategy is PlanStrategy.DIRECT
        assert planner.plan(1009).strategy is PlanStrategy.BLUESTEIN
        assert planner.plan(360).strategy is PlanStrategy.MIXED_RADIX

    def test_measure_policy_records_timings(self, random_complex):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        plan = planner.plan(64)
        assert 64 in planner.measurements
        x = random_complex(64)
        assert np.allclose(plan.execute(x), np.fft.fft(x), atol=1e-9)

    def test_forget_clears_wisdom(self):
        planner = Planner()
        planner.plan(16)
        planner.forget()
        assert planner.wisdom == {}

    def test_wisdom_export_import_round_trip(self):
        planner = Planner()
        planner.plan(32)
        planner.plan(13, PlanDirection.BACKWARD)
        data = planner.export_wisdom()
        other = Planner()
        other.import_wisdom(data)
        assert other.plan(32).strategy is planner.plan(32).strategy

    def test_default_planner_shared(self):
        assert get_default_planner() is get_default_planner()
        assert plan_fft(16) is plan_fft(16)


class TestTwoLayerDecomposition:
    def test_balanced_default(self):
        d = TwoLayerDecomposition.for_size(4096)
        assert (d.m, d.k) == (64, 64)

    def test_explicit_factors(self):
        d = TwoLayerDecomposition.for_size(24, m=6, k=4)
        assert (d.m, d.k) == (6, 4)

    def test_only_m_given(self):
        d = TwoLayerDecomposition.for_size(24, m=8)
        assert (d.m, d.k) == (8, 3)

    def test_only_k_given(self):
        d = TwoLayerDecomposition.for_size(24, k=3)
        assert (d.m, d.k) == (8, 3)

    def test_invalid_factorisation_rejected(self):
        with pytest.raises(ValueError):
            TwoLayerDecomposition.for_size(24, m=7)
        with pytest.raises(ValueError):
            TwoLayerDecomposition(n=24, m=5, k=5)

    def test_index_maps(self):
        d = TwoLayerDecomposition.for_size(12, m=4, k=3)
        assert d.input_index(sub_fft=1, element=2) == 2 * 3 + 1
        assert d.output_index(outer_index=2, inner_output=3) == 2 * 4 + 3


class TestTwoLayerPlan:
    @pytest.mark.parametrize("n,m,k", [(12, 4, 3), (64, 8, 8), (100, 10, 10), (720, None, None), (1024, 32, 32)])
    def test_execute_matches_numpy(self, n, m, k, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(TwoLayerPlan(n, m, k).execute(x), np.fft.fft(x))

    def test_backward_direction(self, random_complex, spectra_close):
        x = random_complex(144)
        plan = TwoLayerPlan(144, direction=PlanDirection.BACKWARD)
        spectra_close(plan.execute(x), np.fft.ifft(x), rtol_scale=1e-8)

    def test_stage_by_stage_equals_execute(self, random_complex):
        plan = TwoLayerPlan(60, 10, 6)
        x = random_complex(60)
        work = plan.gather_input(x)
        manual = plan.scatter_output(plan.stage2(plan.apply_twiddle(plan.stage1(work))))
        assert np.allclose(manual, plan.execute(x), atol=1e-12)

    def test_stage1_single_matches_column(self, random_complex):
        plan = TwoLayerPlan(60, 10, 6)
        work = plan.gather_input(random_complex(60))
        full = plan.stage1(work)
        for i in [0, 3, 5]:
            assert np.allclose(plan.stage1_single(work, i), full[:, i], atol=1e-12)

    def test_stage2_single_matches_row(self, random_complex):
        plan = TwoLayerPlan(60, 10, 6)
        work = plan.apply_twiddle(plan.stage1(plan.gather_input(random_complex(60))))
        full = plan.stage2(work)
        for j in [0, 4, 9]:
            assert np.allclose(plan.stage2_single(work, j), full[j, :], atol=1e-12)

    def test_stage1_columns_matches_slices(self, random_complex):
        plan = TwoLayerPlan(64, 8, 8)
        work = plan.gather_input(random_complex(64))
        full = plan.stage1(work)
        assert np.allclose(plan.stage1_columns(work, 2, 6), full[:, 2:6], atol=1e-12)

    def test_stage2_rows_matches_slices(self, random_complex):
        plan = TwoLayerPlan(64, 8, 8)
        work = plan.apply_twiddle(plan.stage1(plan.gather_input(random_complex(64))))
        full = plan.stage2(work)
        assert np.allclose(plan.stage2_rows(work, 1, 4), full[1:4, :], atol=1e-12)

    def test_twiddle_column_matches_matrix(self, random_complex):
        plan = TwoLayerPlan(24, 6, 4)
        col = random_complex(6)
        assert np.allclose(plan.twiddle_column(col, 2), col * plan.twiddles[:, 2])

    def test_gather_rejects_wrong_length(self, random_complex):
        with pytest.raises(ValueError):
            TwoLayerPlan(24).gather_input(random_complex(25))

    def test_out_of_range_sub_fft_raises(self, random_complex):
        plan = TwoLayerPlan(24, 6, 4)
        work = plan.gather_input(random_complex(24))
        with pytest.raises(IndexError):
            plan.stage1_single(work, 4)
        with pytest.raises(IndexError):
            plan.stage2_single(work, 6)

    def test_wrong_work_shape_raises(self):
        plan = TwoLayerPlan(24, 6, 4)
        with pytest.raises(ValueError):
            plan.stage1(np.zeros((4, 6), dtype=complex))


class TestThreeLayerPlan:
    @pytest.mark.parametrize("n", [8, 16, 32, 64, 128, 512, 2048])
    def test_execute_matches_numpy(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(ThreeLayerPlan(n).execute(x), np.fft.fft(x))

    def test_factorisation_invariant(self):
        plan = ThreeLayerPlan(128)
        assert plan.r * plan.k * plan.k == 128

    def test_explicit_factors(self, random_complex, spectra_close):
        plan = ThreeLayerPlan(72, r=2, k=6)
        assert (plan.r, plan.k) == (2, 6)
        x = random_complex(72)
        spectra_close(plan.execute(x), np.fft.fft(x))

    def test_r_equal_one_square_size(self, random_complex, spectra_close):
        plan = ThreeLayerPlan(64, r=1, k=8)
        x = random_complex(64)
        spectra_close(plan.execute(x), np.fft.fft(x))

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            ThreeLayerPlan(64, r=3, k=4)

    def test_layerwise_equals_execute(self, random_complex):
        plan = ThreeLayerPlan(128)
        x = random_complex(128)
        work = plan.gather_input(x)
        manual = plan.scatter_output(
            plan.layer3(
                plan.apply_outer_twiddle(plan.layer2(plan.apply_inner_twiddle(plan.layer1(work))))
            )
        )
        assert np.allclose(manual, plan.execute(x), atol=1e-10)


class TestInPlacePlan:
    @pytest.mark.parametrize("n", [16, 64, 100, 1024])
    def test_execute_overwrites_buffer(self, n, random_complex, spectra_close):
        x = random_complex(n)
        buffer = x.copy()
        result = InPlaceTwoLayerPlan(n).execute(buffer)
        assert result is buffer
        spectra_close(buffer, np.fft.fft(x))

    def test_no_reorder_leaves_transposed_layout(self, random_complex):
        n = 64
        plan = InPlaceTwoLayerPlan(n)
        x = random_complex(n)
        buffer = x.copy()
        plan.execute(buffer, reorder=False)
        expected = np.fft.fft(x)
        transposed = buffer.reshape(plan.m, plan.k)
        assert np.allclose(np.ascontiguousarray(transposed.T).reshape(n), expected, atol=1e-9)

    def test_stagewise_inplace(self, random_complex, spectra_close):
        n = 144
        plan = InPlaceTwoLayerPlan(n)
        x = random_complex(n)
        buffer = x.copy()
        plan.stage1_inplace(buffer)
        plan.twiddle_inplace(buffer)
        plan.stage2_inplace(buffer)
        plan.reorder_inplace(buffer)
        spectra_close(buffer, np.fft.fft(x))

    def test_single_column_recompute(self, random_complex):
        n = 64
        plan = InPlaceTwoLayerPlan(n)
        x = random_complex(n)
        buffer = x.copy()
        reference = x.copy()
        plan.stage1_inplace(reference)
        plan.stage1_inplace(buffer)
        # corrupt one column and recompute it from scratch data
        buffer.reshape(plan.m, plan.k)[:, 3] = 0
        buffer.reshape(plan.m, plan.k)[:, 3] = x.reshape(plan.m, plan.k)[:, 3]
        plan.stage1_single_inplace(buffer, 3)
        assert np.allclose(buffer, reference, atol=1e-12)

    def test_requires_contiguous_complex_buffer(self):
        plan = InPlaceTwoLayerPlan(16)
        with pytest.raises(ValueError):
            plan.execute(np.zeros(16, dtype=np.float64))
        with pytest.raises(ValueError):
            plan.execute(np.zeros(15, dtype=np.complex128))

    def test_exposes_out_of_place_plan(self):
        plan = InPlaceTwoLayerPlan(36)
        assert plan.out_of_place.n == 36
        assert plan.m * plan.k == 36
        assert plan.twiddles.shape == (plan.m, plan.k)

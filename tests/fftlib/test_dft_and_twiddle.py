"""Tests for the reference DFT and the twiddle-factor cache."""

import numpy as np
import pytest

from repro.fftlib.dft import dft_matrix, direct_dft, direct_idft, direct_dft_along_axis
from repro.fftlib.twiddle import (
    TwiddleCache,
    get_global_cache,
    omega,
    stage_twiddles,
    twiddle_factors,
)


class TestDftMatrix:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8, 16])
    def test_matches_numpy_fft_on_identity(self, n):
        matrix = dft_matrix(n)
        assert np.allclose(matrix, np.fft.fft(np.eye(n), axis=0).T)

    def test_inverse_matrix_inverts(self):
        n = 12
        forward = dft_matrix(n)
        backward = dft_matrix(n, inverse=True)
        assert np.allclose(backward @ forward, np.eye(n), atol=1e-12)

    def test_forward_is_symmetric(self):
        matrix = dft_matrix(9)
        assert np.allclose(matrix, matrix.T)


class TestDirectDft:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 13, 32])
    def test_matches_numpy(self, n, random_complex):
        x = random_complex(n)
        assert np.allclose(direct_dft(x), np.fft.fft(x), atol=1e-9)

    def test_inverse_round_trip(self, random_complex):
        x = random_complex(17)
        assert np.allclose(direct_idft(direct_dft(x)), x, atol=1e-10)

    def test_batched_last_axis(self, random_complex):
        x = random_complex(6 * 5).reshape(5, 6)
        assert np.allclose(direct_dft(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_along_axis(self, random_complex):
        x = random_complex(6 * 5).reshape(6, 5)
        assert np.allclose(direct_dft_along_axis(x, axis=0), np.fft.fft(x, axis=0), atol=1e-10)


class TestOmegaAndTwiddles:
    def test_omega_forward_is_unit_magnitude(self):
        w = omega(16)
        assert abs(abs(w) - 1.0) < 1e-15
        assert np.isclose(w ** 16, 1.0)

    def test_omega_inverse_is_conjugate(self):
        assert np.isclose(omega(8, inverse=True), np.conj(omega(8)))

    def test_twiddle_factors_are_powers(self):
        tw = twiddle_factors(8)
        w = omega(8)
        assert np.allclose(tw, [w**j for j in range(8)])

    def test_stage_twiddles_match_definition(self):
        m, k = 4, 3
        tw = stage_twiddles(m, k)
        n = m * k
        expected = np.array([[omega(n) ** (j2 * n1) for n1 in range(k)] for j2 in range(m)])
        assert np.allclose(tw, expected)

    def test_stage_twiddles_inverse_conjugate(self):
        assert np.allclose(stage_twiddles(4, 4, inverse=True), np.conj(stage_twiddles(4, 4)))


class TestTwiddleCache:
    def test_hit_returns_same_object(self):
        cache = TwiddleCache()
        a = cache.vector(32)
        b = cache.vector(32)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys_are_separate(self):
        cache = TwiddleCache()
        assert cache.vector(8) is not cache.vector(8, inverse=True)

    def test_eviction_respects_capacity(self):
        cache = TwiddleCache(max_entries=2)
        cache.vector(2)
        cache.vector(3)
        cache.vector(4)
        assert len(cache) <= 2

    def test_clear_resets(self):
        cache = TwiddleCache()
        cache.vector(8)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_dft_matrix_caching(self):
        cache = TwiddleCache()
        m = cache.dft_matrix(5)
        assert np.allclose(m, dft_matrix(5))
        assert cache.dft_matrix(5) is m

    def test_global_cache_is_singleton(self):
        assert get_global_cache() is get_global_cache()


class TestTwiddleCacheLRU:
    """LRU eviction + cache_info counters (mirrors the plan-cache policy)."""

    def test_cache_info_counts_hits_and_misses(self):
        cache = TwiddleCache()
        cache.vector(8)
        cache.vector(8)
        cache.vector(9)
        info = cache.cache_info()
        assert (info.hits, info.misses) == (1, 2)
        assert info.size == 2
        assert info.limit == cache.max_entries

    def test_recently_used_entry_survives_eviction(self):
        cache = TwiddleCache(max_entries=2)
        first = cache.vector(8)
        cache.vector(9)
        assert cache.vector(8) is first  # touch 8 -> 9 becomes LRU
        cache.vector(10)                 # evicts 9, not 8
        assert cache.vector(8) is first
        info = cache.cache_info()
        assert info.size == 2

    def test_thread_safe_concurrent_fill(self):
        import threading

        cache = TwiddleCache(max_entries=64)
        errors = []

        def worker(seed):
            try:
                for n in range(2, 34):
                    v = cache.vector(n)
                    assert v.shape == (n,)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.cache_info().size == 32

"""Tests for repro.fftlib.factorization."""

import numpy as np
import pytest

from repro.fftlib import factorization as fz


class TestSmallestPrimeFactor:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (9, 3), (35, 5), (49, 7), (97, 97), (2**20, 2)])
    def test_values(self, n, expected):
        assert fz.smallest_prime_factor(n) == expected


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 11, 13, 97, 101, 8191])
    def test_primes(self, n):
        assert fz.is_prime(n)

    @pytest.mark.parametrize("n", [1, 4, 6, 9, 91, 1024])
    def test_composites(self, n):
        assert not fz.is_prime(n)


class TestPrimeFactors:
    @pytest.mark.parametrize("n", [2, 12, 360, 1024, 9973, 2 * 3 * 5 * 7 * 11])
    def test_product_reconstructs(self, n):
        assert int(np.prod(fz.prime_factors(n))) == n

    def test_factors_are_sorted_and_prime(self):
        factors = fz.prime_factors(360)
        assert list(factors) == sorted(factors)
        assert all(fz.is_prime(f) for f in factors)

    def test_one_has_no_factors(self):
        assert fz.prime_factors(1) == ()

    def test_largest_prime_factor(self):
        assert fz.largest_prime_factor(2 * 3 * 97) == 97
        assert fz.largest_prime_factor(1) == 1


class TestFactorPairs:
    def test_all_pairs_multiply_to_n(self):
        for a, b in fz.factor_pairs(360):
            assert a * b == 360
            assert a <= b

    def test_prime_has_single_pair(self):
        assert fz.factor_pairs(13) == [(1, 13)]


class TestBalancedSplit:
    @pytest.mark.parametrize("n", [4, 64, 100, 1024, 2**15, 2**16, 720, 1000000])
    def test_product_and_ordering(self, n):
        m, k = fz.balanced_split(n)
        assert m * k == n
        assert m >= k

    def test_square_splits_evenly(self):
        assert fz.balanced_split(4096) == (64, 64)

    def test_power_of_two_non_square(self):
        m, k = fz.balanced_split(2**15)
        assert (m, k) == (256, 128)

    def test_one(self):
        assert fz.balanced_split(1) == (1, 1)


class TestRadixSchedule:
    @pytest.mark.parametrize("n", [2, 8, 12, 360, 1024, 2**20, 3**5, 5**4, 97])
    def test_product_is_n(self, n):
        assert int(np.prod(fz.radix_schedule(n))) == n

    def test_prefers_large_radices(self):
        schedule = fz.radix_schedule(2**10)
        assert max(schedule) == 16
        assert all(r <= 16 for r in schedule)

    def test_plain_prime_schedule(self):
        assert fz.radix_schedule(12, prefer_large=False) == (2, 2, 3)

    def test_one(self):
        assert fz.radix_schedule(1) == (1,)

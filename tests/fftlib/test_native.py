"""Tests for the generated-C native kernel tier.

The contract under test: requesting ``native=True`` anywhere in the stack
NEVER changes results (differential equivalence against the pure-NumPy
stage bodies) and NEVER fails (graceful fallback with a reason when the
tier cannot run).  The compile-once kernel cache is exercised across
processes, including the concurrent first-compile stampede.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.fftlib import native as native_mod
from repro.fftlib.executor import (
    RealStageProgram,
    StageProgram,
    StockhamStageProgram,
    get_program,
)
from repro.fftlib.native import (
    build_native_program,
    native_info,
    native_supported,
    native_unavailable_reason,
)
from repro.fftlib.planner import Planner, plan_fft

HAVE_NATIVE = native_supported()

needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no usable C compiler / native tier disabled"
)

#: codelet bases, generic odd radices, large mixed-radix, small prime
DIFFERENTIAL_SIZES = [2, 8, 16, 64, 96, 360, 500, 1000, 2187, 4096, 5040, 61, 121]


def _rng(n):
    rng = np.random.default_rng(1234 + n)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestDifferentialEquivalence:
    """Native and pure lowerings must agree to near machine precision."""

    @needs_native
    @pytest.mark.parametrize("n", DIFFERENTIAL_SIZES)
    def test_complex_forward_matches_pure(self, n):
        x = _rng(n)
        pure = StageProgram(n).execute(x)
        native = StageProgram(n, native=True)
        assert native.native is not None, native.native_fallback_reason
        scale = np.max(np.abs(pure))
        assert np.allclose(native.execute(x), pure, atol=1e-12 * scale)

    @needs_native
    @pytest.mark.parametrize("n", [256, 360, 4096])
    def test_batched_matches_pure(self, n):
        rng = np.random.default_rng(99)
        X = rng.standard_normal((5, n)) + 1j * rng.standard_normal((5, n))
        pure = StageProgram(n).execute(X)
        native = StageProgram(n, native=True).execute(X)
        assert np.allclose(native, pure, atol=1e-12 * np.max(np.abs(pure)))

    @needs_native
    @pytest.mark.parametrize("n", [16, 4096, 1000, 360])
    def test_real_program_matches_pure(self, n):
        xr = np.random.default_rng(7).standard_normal(n)
        pure = RealStageProgram(n).execute(xr)
        native = RealStageProgram(n, native=True).execute(xr)
        assert np.allclose(native, pure, atol=1e-12 * np.max(np.abs(pure)))

    @needs_native
    @pytest.mark.parametrize("n", [16, 256, 4096, 1000])
    def test_inplace_stockham_matches_pure(self, n):
        x = _rng(n)
        pure = StockhamStageProgram(n).execute(x)
        buf = np.array(x)
        StockhamStageProgram(n, native=True).execute_inplace(buf)
        assert np.allclose(buf, pure, atol=1e-12 * np.max(np.abs(pure)))

    @needs_native
    def test_bluestein_size_falls_back_but_matches(self):
        # 12289 is prime past the direct-DFT bound: Bluestein base, no
        # native lowering - the program must report why and still be right.
        n = 12289
        program = StageProgram(n, native=True)
        assert program.native is None
        assert "Bluestein" in program.native_fallback_reason
        x = _rng(n)
        pure = StageProgram(n).execute(x)
        assert np.allclose(program.execute(x), pure, atol=1e-12 * np.max(np.abs(pure)))

    @needs_native
    def test_plan_level_native_roundtrip(self):
        n = 4096
        x = _rng(n)
        plan = plan_fft(n, backend="fftlib", native=True)
        reference = StageProgram(n).execute(x)
        spectrum = plan.execute(x)
        assert np.allclose(spectrum, reference, atol=1e-12 * np.max(np.abs(reference)))
        back = plan.inverse_plan().execute(spectrum)
        assert np.allclose(back, x, atol=1e-12 * np.max(np.abs(x)))


class TestGracefulFallback:
    """native=True must never fail - only degrade, with a reason."""

    def test_env_disable_forces_pure_lowering(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert not native_supported()
        assert "REPRO_NO_NATIVE" in native_unavailable_reason()
        program = StageProgram(360, native=True)
        assert program.native is None
        assert "REPRO_NO_NATIVE" in program.native_fallback_reason
        x = _rng(360)
        pure = StageProgram(360).execute(x)
        assert np.allclose(program.execute(x), pure, atol=1e-12 * np.max(np.abs(pure)))

    def test_env_disable_is_not_sticky(self, monkeypatch):
        # Baseline with the kill switch absent (the outer test run may itself
        # set REPRO_NO_NATIVE, so HAVE_NATIVE is not the right reference).
        monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
        baseline = native_supported()
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert not native_supported()
        monkeypatch.delenv("REPRO_NO_NATIVE")
        assert native_supported() == baseline

    def test_missing_compiler_reports_reason(self, monkeypatch):
        from repro.fftlib.native import cache

        monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
        monkeypatch.setattr(cache, "compiler_command", lambda: None)
        cache.reset_cache_state()
        try:
            assert not native_supported()
            reason = native_unavailable_reason()
            assert reason and "compiler" in reason
            program = StageProgram(256, native=True)
            assert program.native is None
            assert "compiler" in program.native_fallback_reason
            x = _rng(256)
            pure = StageProgram(256).execute(x)
            assert np.allclose(program.execute(x), pure, atol=1e-12 * np.max(np.abs(pure)))
        finally:
            monkeypatch.undo()
            cache.reset_cache_state()

    def test_get_native_kernels_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        with pytest.raises(RuntimeError, match="REPRO_NO_NATIVE"):
            native_mod.get_native_kernels()

    def test_planner_keeps_request_and_reports_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        plan = Planner().plan(512, native=True)
        assert plan.native
        assert "native-fallback" in plan.describe()

    def test_foreign_backend_request_is_inert(self):
        plan = plan_fft(512, backend="numpy", native=True)
        assert not plan.native

    def test_native_info_counters(self):
        info = native_info()
        assert set(info) >= {
            "supported", "reason", "compiles", "disk_hits",
            "failures", "programs_built", "fallbacks",
        }
        assert info["supported"] == HAVE_NATIVE


class TestPlannerSurface:
    def test_wisdom_key_distinguishes_native(self):
        planner = Planner()
        a = planner.plan(256, native=True)
        b = planner.plan(256)
        assert a is not b
        assert a is planner.plan(256, native=True)

    def test_wisdom_export_import_round_trip(self):
        planner = Planner()
        planner.plan(512, native=True)
        data = planner.export_wisdom()
        assert "512:forward:fftlib:nat" in data
        fresh = Planner()
        fresh.import_wisdom(data)
        restored = fresh.plan(512, native=True)
        assert restored.native


SUBPROCESS_PROBE = """
import json
import numpy as np
from repro.fftlib.executor import StageProgram
from repro.fftlib.native import native_info

program = StageProgram(360, native=True)
x = np.arange(360) * (1.0 + 0.5j)
got = program.execute(x)
ref = StageProgram(360).execute(x)
ok = bool(np.allclose(got, ref, atol=1e-12 * float(np.max(np.abs(ref)))))
info = native_info()
print(json.dumps({"ok": ok, "compiles": info["compiles"],
                  "disk_hits": info["disk_hits"], "supported": info["supported"]}))
"""


def _probe_env(cache_dir):
    import repro

    env = dict(os.environ)
    env["REPRO_NATIVE_CACHE"] = str(cache_dir)
    env.pop("REPRO_NO_NATIVE", None)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    return env


@needs_native
class TestKernelCacheAcrossProcesses:
    def test_second_process_reuses_compiled_kernel(self, tmp_path):
        import json as _json

        env = _probe_env(tmp_path / "cache")
        first = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_PROBE], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert first.returncode == 0, first.stderr
        report = _json.loads(first.stdout)
        assert report["ok"] and report["supported"]
        assert report["compiles"] == 1 and report["disk_hits"] == 0
        second = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_PROBE], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert second.returncode == 0, second.stderr
        report = _json.loads(second.stdout)
        assert report["ok"] and report["supported"]
        # cache hit: the shared object is loaded straight from disk
        assert report["compiles"] == 0 and report["disk_hits"] == 1

    def test_concurrent_first_compile_is_stampede_safe(self, tmp_path):
        import json as _json

        env = _probe_env(tmp_path / "stampede")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", SUBPROCESS_PROBE], env=env,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(4)
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            reports.append(_json.loads(out))
        # every racer must end up with a working tier and a correct result
        assert all(r["ok"] and r["supported"] for r in reports)
        # the atomic-rename discipline means racers either compiled their own
        # temp (then renamed over the same key) or hit the finished artifact
        assert all(r["compiles"] + r["disk_hits"] == 1 for r in reports)

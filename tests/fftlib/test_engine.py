"""Tests for the mixed-radix engine, Bluestein fallback, real transforms."""

import numpy as np
import pytest

from repro.fftlib.bluestein import bluestein_fft, next_fast_power_of_two
from repro.fftlib.mixed_radix import fft, fft_along_axis, ifft, ifft_along_axis
from repro.fftlib.real import irfft, rfft


class TestMixedRadixForward:
    @pytest.mark.parametrize(
        "n", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 18, 21, 30, 32, 36, 60, 64, 100, 120, 128, 210, 243, 256, 500, 512, 1000, 1024]
    )
    def test_matches_numpy(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(fft(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [97, 101, 127, 211, 509])
    def test_large_primes_via_bluestein(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(fft(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [2 * 97, 3 * 101, 4 * 127])
    def test_composite_with_large_prime_factor(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(fft(x), np.fft.fft(x))

    def test_batched_2d(self, random_complex, spectra_close):
        x = random_complex(24 * 5).reshape(5, 24)
        spectra_close(fft(x), np.fft.fft(x, axis=-1))

    def test_batched_3d(self, random_complex, spectra_close):
        x = random_complex(12 * 6).reshape(2, 3, 12)
        spectra_close(fft(x), np.fft.fft(x, axis=-1))

    def test_real_input_promoted(self, rng, spectra_close):
        x = rng.standard_normal(48)
        spectra_close(fft(x), np.fft.fft(x))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fft(np.zeros(0, dtype=complex))

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            fft(np.complex128(1.0))


class TestMixedRadixInverse:
    @pytest.mark.parametrize("n", [1, 4, 12, 31, 64, 100, 256])
    def test_ifft_matches_numpy(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(ifft(x), np.fft.ifft(x), rtol_scale=1e-8)

    @pytest.mark.parametrize("n", [8, 60, 121, 512])
    def test_round_trip(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(ifft(fft(x)), x, rtol_scale=1e-8)


class TestAxisVariants:
    def test_fft_along_axis0(self, random_complex, spectra_close):
        x = random_complex(8 * 6).reshape(8, 6)
        spectra_close(fft_along_axis(x, 0), np.fft.fft(x, axis=0))

    def test_fft_along_middle_axis(self, random_complex, spectra_close):
        x = random_complex(4 * 6 * 3).reshape(4, 6, 3)
        spectra_close(fft_along_axis(x, 1), np.fft.fft(x, axis=1))

    def test_ifft_along_axis(self, random_complex, spectra_close):
        x = random_complex(9 * 5).reshape(9, 5)
        spectra_close(ifft_along_axis(x, 0), np.fft.ifft(x, axis=0), rtol_scale=1e-8)


class TestBluestein:
    def test_next_fast_power_of_two(self):
        assert next_fast_power_of_two(1) == 1
        assert next_fast_power_of_two(5) == 8
        assert next_fast_power_of_two(8) == 8
        assert next_fast_power_of_two(129) == 256

    @pytest.mark.parametrize("n", [1, 2, 3, 11, 17, 61, 101, 257])
    def test_matches_numpy(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(bluestein_fft(x), np.fft.fft(x), rtol_scale=1e-8)

    def test_batched(self, random_complex, spectra_close):
        x = random_complex(13 * 4).reshape(4, 13)
        spectra_close(bluestein_fft(x), np.fft.fft(x, axis=-1), rtol_scale=1e-8)


class TestRealTransforms:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 100, 256, 17, 33])
    def test_rfft_matches_numpy(self, n, rng, spectra_close):
        x = rng.standard_normal(n)
        spectra_close(rfft(x), np.fft.rfft(x), rtol_scale=1e-8)

    @pytest.mark.parametrize("n", [2, 8, 64, 100, 17])
    def test_round_trip(self, n, rng):
        x = rng.standard_normal(n)
        assert np.allclose(irfft(rfft(x), n), x, atol=1e-9)

    def test_single_sample(self):
        assert np.allclose(rfft(np.array([3.0])), [3.0])

    def test_rfft_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            rfft(rng.standard_normal((4, 4)))

    def test_irfft_rejects_wrong_bins(self):
        with pytest.raises(ValueError):
            irfft(np.zeros(5, dtype=complex), n=16)

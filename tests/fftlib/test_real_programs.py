"""Compiled real-input programs, real plans, backends, and wisdom persistence."""

import numpy as np
import pytest

from repro.fftlib import executor
from repro.fftlib.backends import FFTBackend, get_backend
from repro.fftlib.executor import get_program, get_real_program, rfft as exec_rfft
from repro.fftlib.plan import PlanDirection, PlanStrategy
from repro.fftlib.planner import Planner, PlannerPolicy, plan_fft
from repro.fftlib.real import irfft, rfft

EVEN_SIZES = [2, 4, 16, 48, 250, 1024]
ODD_SIZES = [3, 9, 15, 27, 81, 255]
PRIME_SIZES = [17, 31, 97, 211]


@pytest.fixture
def rng():
    return np.random.default_rng(20170712)


class TestRealStageProgram:
    @pytest.mark.parametrize("n", EVEN_SIZES + ODD_SIZES + PRIME_SIZES + [1])
    def test_rfft_matches_numpy(self, n, rng):
        x = rng.standard_normal(n)
        assert np.allclose(rfft(x), np.fft.rfft(x), atol=1e-10)

    @pytest.mark.parametrize("n", EVEN_SIZES + ODD_SIZES + PRIME_SIZES + [1])
    def test_round_trip(self, n, rng):
        x = rng.standard_normal(n)
        assert np.allclose(irfft(rfft(x), n), x, atol=1e-10)

    @pytest.mark.parametrize("n", [16, 27, 97, 250])
    def test_batched_leading_axes(self, n, rng):
        X = rng.standard_normal((3, 5, n))
        program = get_real_program(n)
        assert np.allclose(program.execute(X), np.fft.rfft(X, axis=-1), atol=1e-10)
        assert np.allclose(program.execute_inverse(program.execute(X)), X, atol=1e-10)

    def test_non_contiguous_input(self, rng):
        Y = rng.standard_normal((64, 4)).T  # last axis strided
        assert np.allclose(get_real_program(64).execute(Y), np.fft.rfft(Y, axis=-1), atol=1e-10)

    def test_even_length_uses_half_program(self):
        program = get_real_program(256)
        assert program.half == 128
        assert program.program is get_program(128)
        assert "packed" in program.describe()

    def test_odd_length_routes_through_compiled_program(self):
        # The seed's odd fallback re-entered the recursive engine; the
        # compiled path must reference the cached full-length program.
        program = get_real_program(81)
        assert program.half == 0
        assert program.program is get_program(81)
        assert "odd" in program.describe()

    def test_shared_lru_with_complex_programs(self):
        executor.clear_program_cache()
        get_real_program(48)
        info = executor.program_cache_info()
        # one real program + the half-length complex program it wraps
        assert info.size == 2
        assert get_real_program(48) is get_real_program(48)
        assert executor.program_cache_info().hits >= 1

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            get_real_program(16).execute(np.zeros(15))
        with pytest.raises(ValueError):
            get_real_program(16).execute_inverse(np.zeros(5, dtype=complex))

    def test_module_level_batched_rfft(self, rng):
        X = rng.standard_normal((4, 30))
        assert np.allclose(exec_rfft(X), np.fft.rfft(X, axis=-1), atol=1e-10)


class TestRealPlans:
    @pytest.mark.parametrize("n", [48, 81, 256])
    def test_forward_and_inverse_plan(self, n, rng):
        x = rng.standard_normal(n)
        plan = plan_fft(n, real=True)
        assert plan.real and plan.bins == n // 2 + 1
        assert np.allclose(plan.execute(x), np.fft.rfft(x), atol=1e-10)
        inverse = plan.inverse_plan()
        assert inverse.real
        assert np.allclose(inverse.execute(plan.execute(x)), x, atol=1e-10)

    def test_real_plans_cached_separately(self):
        planner = Planner()
        assert planner.plan(64) is not planner.plan(64, real=True)
        assert planner.plan(64, real=True) is planner.plan(64, real=True)

    def test_shape_validation(self, rng):
        plan = plan_fft(32, real=True)
        with pytest.raises(ValueError):
            plan.execute(rng.standard_normal(31))
        with pytest.raises(ValueError):
            plan.inverse_plan().execute(np.zeros(32, dtype=complex))


class TestBackendRealTransforms:
    @pytest.mark.parametrize("name", ["fftlib", "numpy"])
    @pytest.mark.parametrize("n", [30, 33])
    def test_builtin_backends(self, name, n, rng):
        backend = get_backend(name)
        X = rng.standard_normal((4, n))
        assert np.allclose(backend.rfft(X, axis=-1), np.fft.rfft(X, axis=-1), atol=1e-10)
        assert np.allclose(backend.irfft(backend.rfft(X, axis=-1), n=n, axis=-1), X, atol=1e-10)
        # arbitrary axis
        assert np.allclose(backend.rfft(X, axis=0), np.fft.rfft(X, axis=0), atol=1e-10)

    def test_base_class_fallback_covers_third_party_backends(self, rng):
        class Fallback(FFTBackend):
            name = "fallback-test"

            def fft(self, x, axis=-1):
                return np.fft.fft(x, axis=axis)

            def ifft(self, x, axis=-1):
                return np.fft.ifft(x, axis=axis)

        backend = Fallback()
        for n in (8, 9):
            x = rng.standard_normal((2, n))
            assert np.allclose(backend.rfft(x), np.fft.rfft(x), atol=1e-10)
            assert np.allclose(backend.irfft(backend.rfft(x), n=n), x, atol=1e-10)


class TestWisdomPersistence:
    def test_export_includes_measurements_and_programs(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.plan(64)
        planner.plan(48, real=True)
        data = planner.export_wisdom()
        assert "64:forward:fftlib" in data
        assert "48:forward:fftlib:real" in data
        assert "64" in data["__measurements__"]
        assert "RealStageProgram" in data["__programs__"]["48:forward:fftlib:real"]
        # JSON-serialisable end to end
        import json

        json.dumps(data)

    def test_import_round_trip_restores_real_plans_and_timings(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.plan(64)
        planner.plan(48, real=True)
        other = Planner(policy=PlannerPolicy.MEASURE)
        other.import_wisdom(planner.export_wisdom())
        assert 64 in other.measurements
        restored = other.plan(48, real=True)
        assert restored.real
        assert restored.strategy is planner.plan(48, real=True).strategy

    def test_measure_policy_reuses_imported_timings(self):
        # Imported timings decide the strategy without re-timing: a fake
        # measurement naming bluestein as fastest must win over the
        # mixed-radix heuristic for a composite size.
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.import_wisdom(
            {"__measurements__": {"64": {"bluestein": 1e-9, "mixed-radix": 1.0}}}
        )
        assert planner.plan(64).strategy is PlanStrategy.BLUESTEIN

    def test_imported_invalid_strategy_falls_back(self):
        # A codelet strategy for a size without a codelet must not be trusted.
        planner = Planner(policy=PlannerPolicy.ESTIMATE)
        planner.import_wisdom({"4096:forward:fftlib": "mixed-radix"})
        assert planner.plan(4096).strategy is PlanStrategy.MIXED_RADIX

    def test_legacy_flat_formats_still_accepted(self):
        planner = Planner()
        planner.import_wisdom({"16:forward": "mixed-radix"})
        assert planner.plan(16).strategy.value == "mixed-radix"
        planner.import_wisdom({"32:backward:numpy": "mixed-radix"})
        assert (
            planner.plan(32, PlanDirection.BACKWARD, "numpy").strategy.value
            == "mixed-radix"
        )


class TestFusedInverseOverwrite:
    @pytest.mark.parametrize("n", [16, 64, 360, 1000, 4096])
    def test_overwrite_inverse_matches_out_of_place(self, n):
        rng = np.random.default_rng(5 + n)
        x = rng.standard_normal(n)
        program = get_real_program(n)
        spectrum = program.execute(x)
        expected = program.execute_inverse(spectrum)
        buf = np.array(spectrum)
        out = program.execute_inverse_overwrite(buf)
        assert np.allclose(out, expected, atol=1e-12 * np.max(np.abs(x) + 1))
        # the fused path returns a float64 view aliasing the caller's buffer
        assert out.dtype == np.float64
        assert np.shares_memory(out, buf)

    def test_overwrite_inverse_destroys_the_spectrum(self):
        program = get_real_program(64)
        x = np.random.default_rng(0).standard_normal(64)
        buf = program.execute(x)
        snapshot = buf.copy()
        program.execute_inverse_overwrite(buf)
        assert not np.allclose(buf, snapshot)

    def test_degraded_paths_still_correct(self):
        rng = np.random.default_rng(21)
        # odd length: no packing trick, ordinary out-of-place inverse
        x = rng.standard_normal(15)
        program = get_real_program(15)
        out = program.execute_inverse_overwrite(program.execute(x))
        assert np.allclose(out, x, atol=1e-12)
        # batched spectra: the 1-D fused fast path silently degrades
        X = rng.standard_normal((3, 64))
        program = get_real_program(64)
        S = np.stack([program.execute(row) for row in X])
        out = program.execute_inverse_overwrite(S)
        assert np.allclose(out, X, atol=1e-12)
        assert not np.shares_memory(out, S)
        # read-only spectra never get overwritten
        s = program.execute(X[0])
        s.flags.writeable = False
        assert np.allclose(program.execute_inverse_overwrite(s), X[0], atol=1e-12)

"""Differential tests: the fused protected program vs the legacy scheme path.

The fused path (PR tentpole) compiles the ABFT into the transform; these
tests pin down the equivalences that make that safe:

* the fused spectrum is *bitwise* identical to the unprotected compiled
  ``StageProgram`` (same kernels, same scratch, same write order);
* the end-to-end reference checksum (``refs[-1]``) is bitwise identical to
  the legacy scheme's ``c . x`` (same operators from the same constants);
* the detection thresholds are bitwise identical between the paths (the
  plan-time threshold closures reproduce ``eta_offline`` / ``eta_memory``
  exactly);
* clean runs make the same no-fault decision on both paths, and a live
  injector never reaches the fused program - every instrumented fault site
  still fires through the paper-exact scheme machinery;
* the fused verification loop detects and repairs faults arriving between
  encode and transform (memory) or inside the transform (computational).
"""

import numpy as np
import pytest

import repro
from repro.core.checksums import weighted_sum
from repro.core.config import FTConfig
from repro.core.constants import SchemeConstants
from repro.core.ftplan import clear_plan_cache
from repro.core.thresholds import ThresholdMode, ThresholdPolicy
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.fftlib import protected as protected_mod
from repro.fftlib.executor import get_program
from repro.fftlib.protected import ProtectedStageProgram, get_protected_program

# codelet-only, mixed-radix, and prime (Bluestein) sizes
SIZES = [64, 720, 4096, 1009]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _data(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestFusedSpectrum:
    @pytest.mark.parametrize("n", SIZES)
    def test_bitwise_identical_to_compiled_program(self, n):
        x = _data(n)
        fused = repro.plan(n).execute(x).output
        direct = get_program(n).execute(x.reshape(1, n)).reshape(n)
        assert np.array_equal(fused, direct)

    @pytest.mark.parametrize("n", SIZES)
    def test_matches_legacy_scheme_within_roundoff(self, n):
        x = _data(n)
        p = repro.plan(n)
        assert p._fused_program is not None
        fused = p._execute_fused(x).output
        legacy = p.scheme.execute(x).output
        assert np.allclose(fused, legacy, rtol=1e-9, atol=1e-9)

    def test_inverse_round_trip_through_fused_path(self):
        n = 720
        x = _data(n)
        p = repro.plan(n)
        spectrum = p.execute(x).output
        back = p.inverse(spectrum).output
        assert np.allclose(back, x, rtol=1e-10, atol=1e-10)

    def test_interior_taps_execute_bitwise_identical_too(self, monkeypatch):
        monkeypatch.setattr(protected_mod, "_INTERIOR_TAP_MIN", 256)
        n = 4096
        prog = ProtectedStageProgram.build(n, optimized=True, memory_ft=True)
        assert len(prog.taps) > 1
        x = _data(n)
        out, taps = prog.execute_tapped(x)
        direct = get_program(n).execute(x.reshape(1, n)).reshape(n)
        assert np.array_equal(out, direct)
        assert taps.shape == (len(prog.taps),)


class TestReferenceChecksums:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("optimized", [True, False])
    def test_final_reference_bitwise_equals_legacy_cx(self, n, optimized):
        config = FTConfig(optimized=optimized)
        consts = SchemeConstants.for_config(n, config)
        prog = get_protected_program(n, optimized=optimized, memory_ft=True)
        x = _data(n)
        refs = prog.encode(x)
        assert np.array_equal(prog.c, consts.c_n)
        assert complex(refs[-1]) == complex(weighted_sum(consts.c_n, x))

    def test_memory_pair_matches_scheme_constants(self):
        n = 720
        consts = SchemeConstants.for_config(n, FTConfig())
        prog = get_protected_program(n, optimized=True, memory_ft=True)
        assert np.array_equal(prog.w1, consts.w1_n)
        assert np.array_equal(prog.w2, consts.w2_n)
        assert prog.w1_rms == consts.w1_n_rms

    def test_interior_references_telescope_correctly(self, monkeypatch):
        monkeypatch.setattr(protected_mod, "_INTERIOR_TAP_MIN", 256)
        n = 4096
        prog = ProtectedStageProgram.build(n, optimized=True, memory_ft=True)
        x = _data(n)
        refs = prog.encode(x)
        for i, tap in enumerate(prog.taps):
            fold = x.reshape(tap.span, -1).sum(axis=1)
            direct_ref = np.dot(tap.encode, fold)
            assert np.isclose(refs[i], direct_ref, rtol=1e-12, atol=0.0)

    def test_interior_taps_verify_clean_data(self, monkeypatch):
        """Tap values agree with the telescoped references on clean input."""

        monkeypatch.setattr(protected_mod, "_INTERIOR_TAP_MIN", 256)
        n = 4096
        prog = ProtectedStageProgram.build(n, optimized=True, memory_ft=True)
        x = _data(n)
        refs = prog.encode(x)
        _, taps = prog.execute_tapped(x)
        scale = float(np.sqrt(n)) * float(np.linalg.norm(x))
        assert np.all(np.abs(taps - refs) < 1e-10 * scale)


class TestThresholdEquivalence:
    @pytest.mark.parametrize("mode", [ThresholdMode.PAPER, ThresholdMode.RELATIVE])
    @pytest.mark.parametrize("n", [1, 2, 720, 4096, 1 << 20])
    def test_offline_closure_bitwise_equals_eta_offline(self, mode, n):
        pol = ThresholdPolicy(mode=mode)
        fn = pol.offline_threshold_fn(n)
        rng = np.random.default_rng(5)
        for _ in range(25):
            sigma0 = float(rng.uniform(0.1, 4.0)) * 10.0 ** int(rng.integers(-20, 20))
            assert fn(sigma0) == pol.eta_offline(n, None, sigma0=sigma0)
        assert fn(0.0) == pol.eta_offline(n, None, sigma0=0.0)

    @pytest.mark.parametrize("mode", [ThresholdMode.PAPER, ThresholdMode.RELATIVE])
    def test_memory_closure_bitwise_equals_eta_memory(self, mode):
        pol = ThresholdPolicy(mode=mode)
        n = 720
        fn = pol.memory_threshold_fn(n)
        weights = np.ones(n)
        rng = np.random.default_rng(6)
        for _ in range(25):
            wr = float(rng.uniform(0.5, 2.0))
            dr = float(rng.uniform(0.0, 8.0))
            assert fn(wr, dr) == pol.eta_memory(
                weights, None, weight_rms=wr, data_rms=dr
            )

    def test_fused_run_decides_clean_on_clean_data(self):
        p = repro.plan(720)
        result = p._execute_fused(_data(720))
        assert not result.report.uncorrectable
        assert not result.report.corrections
        records = [r for r in result.report.verifications if r.site == "fused-ccv"]
        assert records and not any(r.detected for r in records)


class TestRouting:
    def test_live_injector_takes_the_scheme_path(self):
        # Table 6 methodology: power-of-two size, high-bit flip (bits 50-62)
        # so detection is guaranteed on the legacy path.
        n = 4096
        p = repro.plan(n)
        assert p._fused_program is not None
        calls = []
        original = p._execute_fused
        p._execute_fused = lambda x: calls.append(1) or original(x)
        x = _data(n)
        injector = FaultInjector().arm_bitflip(
            FaultSite.STAGE1_INPUT, element=5, bit=60
        )
        result = p.execute(x, injector)
        assert not calls, "live injector must route through the legacy scheme"
        assert result.report.corrections
        direct = get_program(n).execute(x.reshape(1, n)).reshape(n)
        assert np.allclose(result.output, direct, rtol=1e-8, atol=1e-8)

    def test_fault_free_run_takes_the_fused_path(self):
        n = 720
        p = repro.plan(n)
        calls = []
        original = p._execute_fused
        p._execute_fused = lambda x: calls.append(1) or original(x)
        p.execute(_data(n))
        assert calls, "fault-free execute must use the fused program"
        calls.clear()
        # a FaultInjector instance is always live, even with no specs armed
        p.execute(_data(n), FaultInjector())
        assert not calls

    @pytest.mark.parametrize(
        "site", [FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]
    )
    @pytest.mark.parametrize("scheme", ["opt-offline+mem", "opt-online+mem"])
    def test_injected_faults_still_corrected_per_site(self, site, scheme):
        # High-bit flip at a power-of-two size, per the Table 6 campaign's
        # fault model ("one random high bit", bits 50-62): always far above
        # the detection thresholds, so correction must always succeed.
        n = 4096
        p = repro.plan(n, scheme)
        x = _data(n)
        clean = p.execute(x).output
        injector = FaultInjector().arm_bitflip(site, element=17, bit=60)
        result = p.execute(x, injector)
        assert injector.events, "fault site must have fired"
        assert not result.report.uncorrectable
        assert np.allclose(result.output, clean, rtol=1e-8, atol=1e-8)


class TestFusedRecovery:
    def test_memory_corruption_between_encode_and_transform(self, monkeypatch):
        """Corruption of x after encode is located, repaired, and re-run."""

        n = 720
        p = repro.plan(n)
        prog = p._fused_program
        assert prog is not None
        state = {"hits": 0}
        original = ProtectedStageProgram.execute_tapped

        def corrupt_once(self, x):
            state["hits"] += 1
            if state["hits"] == 1:
                x[13] += 1e6  # in-place: simulates memory corruption
            return original(self, x)

        monkeypatch.setattr(ProtectedStageProgram, "execute_tapped", corrupt_once)
        x = _data(n)
        keep = x.copy()
        result = p._execute_fused(x)
        kinds = [c.kind for c in result.report.corrections]
        assert "memory-correct" in kinds and "restart" in kinds
        assert not result.report.uncorrectable
        # repair reconstructs element 13 from the locating pair (roundoff
        # accurate, not bitwise), so the recovered spectrum matches the
        # clean transform to roundoff
        clean = get_program(n).execute(keep.reshape(1, n)).reshape(n)
        assert np.allclose(result.output, clean, rtol=1e-8, atol=1e-8)

    def test_computational_fault_recovered_by_restart(self, monkeypatch):
        n = 720
        p = repro.plan(n)
        state = {"hits": 0}
        original = ProtectedStageProgram.execute_tapped

        def corrupt_output_once(self, x):
            out, taps = original(self, x)
            state["hits"] += 1
            if state["hits"] == 1:
                out = out.copy()
                out[3] += 1e6  # computational fault in the transform
                taps = taps.copy()
                taps[-1] = np.dot(self.taps[-1].weights, out)
            return out, taps

        monkeypatch.setattr(
            ProtectedStageProgram, "execute_tapped", corrupt_output_once
        )
        x = _data(n)
        result = p._execute_fused(x)
        assert state["hits"] == 2, "verification failure must trigger a re-run"
        assert not result.report.uncorrectable
        assert [c.kind for c in result.report.corrections] == ["restart"]
        monkeypatch.undo()
        direct = get_program(n).execute(x.reshape(1, n)).reshape(n)
        assert np.array_equal(result.output, direct)

    def test_persistent_corruption_reported_uncorrectable(self, monkeypatch):
        n = 720
        p = repro.plan(n)
        original = ProtectedStageProgram.execute_tapped

        def always_corrupt(self, x):
            out, taps = original(self, x)
            out = out.copy()
            out[3] += 1e6
            taps = taps.copy()
            taps[-1] = np.dot(self.taps[-1].weights, out)
            return out, taps

        monkeypatch.setattr(ProtectedStageProgram, "execute_tapped", always_corrupt)
        result = p._execute_fused(_data(n))
        assert result.report.uncorrectable


class TestBatchAmortization:
    def test_execute_many_matches_single_vector_decisions(self):
        n = 256
        p = repro.plan(n)
        rows = np.stack([_data(n, seed=s) for s in range(6)])
        batch = p.execute_many(rows)
        singles = np.stack([p.execute(rows[i]).output for i in range(6)])
        assert np.allclose(batch.output, singles, rtol=1e-9, atol=1e-9)
        assert not batch.report.uncorrectable

    def test_component_sigma_rows_matches_private_helper(self):
        pol = ThresholdPolicy()
        rows = np.stack([_data(512, seed=s) for s in range(4)])
        assert np.array_equal(
            pol.component_sigma_rows(rows), pol._component_sigma_rows(rows)
        )

"""Tests for the FFT backend registry and the backend seam in the plans."""

import numpy as np
import pytest

from repro.fftlib.backends import (
    FFTBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
)
from repro.fftlib.plan import PlanDirection
from repro.fftlib.planner import Planner, plan_fft
from repro.fftlib.two_layer import TwoLayerPlan


class TestRegistry:
    def test_builtins_present(self):
        assert {"fftlib", "numpy"} <= set(available_backends())

    def test_default_backend(self):
        assert default_backend_name() == "fftlib"
        assert resolve_backend_name(None) == "fftlib"
        assert get_backend(None) is get_backend("fftlib")

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown FFT backend"):
            get_backend("cufft")

    def test_register_duplicate_rejected(self):
        class Dup(FFTBackend):
            name = "numpy"

            def fft(self, x, axis=-1):
                return np.fft.fft(x, axis=axis)

            def ifft(self, x, axis=-1):
                return np.fft.ifft(x, axis=axis)

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dup())

    def test_register_and_use_custom_backend(self, random_complex, spectra_close):
        class Negacyclic(FFTBackend):
            """A 'custom kernel' that just wraps pocketfft (for the test)."""

            name = "test-custom"
            description = "test double"

            def fft(self, x, axis=-1):
                return np.fft.fft(x, axis=axis)

            def ifft(self, x, axis=-1):
                return np.fft.ifft(x, axis=axis)

        try:
            register_backend(Negacyclic(), overwrite=True)
            x = random_complex(96)
            p = plan_fft(96, backend="test-custom")
            spectra_close(p.execute(x), np.fft.fft(x))
        finally:
            # the registry has no unregister; overwrite with a fresh instance
            # so repeated test runs in one process stay deterministic
            register_backend(Negacyclic(), overwrite=True)

    def test_set_default_backend_round_trip(self):
        set_default_backend("numpy")
        try:
            assert default_backend_name() == "numpy"
            assert resolve_backend_name(None) == "numpy"
        finally:
            set_default_backend("fftlib")


class TestBackendKernels:
    @pytest.mark.parametrize("name", ["fftlib", "numpy"])
    def test_fft_matches_numpy_along_axes(self, name, rng):
        backend = get_backend(name)
        X = rng.standard_normal((3, 5, 16)) + 1j * rng.standard_normal((3, 5, 16))
        for axis in (0, 1, 2, -1):
            np.testing.assert_allclose(
                backend.fft(X, axis=axis), np.fft.fft(X, axis=axis), atol=1e-9
            )
            np.testing.assert_allclose(
                backend.ifft(X, axis=axis), np.fft.ifft(X, axis=axis), atol=1e-9
            )


class TestBackendSeam:
    @pytest.mark.parametrize("name", ["fftlib", "numpy"])
    def test_plan_execute(self, name, random_complex, spectra_close):
        x = random_complex(120)
        p = plan_fft(120, backend=name)
        assert p.backend == name
        spectra_close(p.execute(x), np.fft.fft(x))
        spectra_close(p.inverse_plan().execute(x), np.fft.ifft(x))

    @pytest.mark.parametrize("name", ["fftlib", "numpy"])
    def test_two_layer_plan(self, name, random_complex, spectra_close):
        x = random_complex(256)
        tl = TwoLayerPlan(256, backend=name)
        assert tl.backend == name
        spectra_close(tl.execute(x), np.fft.fft(x))

    def test_wisdom_is_keyed_per_backend(self):
        planner = Planner()
        a = planner.plan(64)
        b = planner.plan(64, backend="numpy")
        assert a is not b
        assert planner.plan(64) is a
        assert planner.plan(64, PlanDirection.FORWARD, "numpy") is b

    def test_wisdom_export_includes_backend_and_accepts_legacy(self):
        planner = Planner()
        planner.plan(32, backend="numpy")
        data = planner.export_wisdom()
        assert "32:forward:numpy" in data
        other = Planner()
        other.import_wisdom({"16:forward": "mixed-radix"})  # legacy two-field key
        assert other.plan(16).strategy.value == "mixed-radix"

    def test_schemes_accept_backend(self, random_complex, spectra_close):
        from repro.core.offline import OfflineABFT
        from repro.core.optimized import OptimizedOnlineABFT

        x = random_complex(256)
        for scheme in (
            OfflineABFT(256, backend="numpy"),
            OptimizedOnlineABFT(256, backend="numpy"),
        ):
            result = scheme.execute(x)
            assert not result.report.detected
            spectra_close(result.output, np.fft.fft(x))

"""Property-based tests for the FFT substrate (hypothesis).

These exercise algebraic invariants of the transform engine on randomly
drawn sizes and data: linearity, Parseval's theorem, the shift theorem,
round-trip identity, and agreement between the independent implementations
(mixed-radix vs. direct DFT vs. two-layer decomposition).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fftlib.dft import direct_dft
from repro.fftlib.mixed_radix import fft, ifft
from repro.fftlib.two_layer import TwoLayerPlan
from repro.fftlib.factorization import balanced_split

# Sizes kept modest so the whole property suite runs in a few seconds.
SIZES = st.integers(min_value=1, max_value=96)
COMPOSITE_SIZES = st.sampled_from(
    [4, 6, 8, 9, 12, 16, 20, 24, 30, 32, 36, 48, 60, 64, 72, 90, 96, 128]
)


def complex_vector(n: int, seed: int, scale: float = 1.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


@settings(max_examples=40, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_fft_matches_direct_dft(n, seed):
    x = complex_vector(n, seed)
    assert np.allclose(fft(x), direct_dft(x), atol=1e-7 * max(n, 1))


@settings(max_examples=40, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_round_trip_identity(n, seed):
    x = complex_vector(n, seed)
    assert np.allclose(ifft(fft(x)), x, atol=1e-8 * max(n, 1))


@settings(max_examples=40, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1), a=st.floats(-3, 3), b=st.floats(-3, 3))
def test_linearity(n, seed, a, b):
    x = complex_vector(n, seed)
    y = complex_vector(n, seed + 1)
    lhs = fft(a * x + b * y)
    rhs = a * fft(x) + b * fft(y)
    assert np.allclose(lhs, rhs, atol=1e-7 * max(n, 1))


@settings(max_examples=40, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_parseval_energy_conservation(n, seed):
    x = complex_vector(n, seed)
    time_energy = np.sum(np.abs(x) ** 2)
    freq_energy = np.sum(np.abs(fft(x)) ** 2) / n
    assert np.isclose(time_energy, freq_energy, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(n=SIZES.filter(lambda v: v >= 2), seed=st.integers(0, 2**31 - 1), shift=st.integers(0, 10))
def test_circular_shift_theorem(n, seed, shift):
    x = complex_vector(n, seed)
    shift = shift % n
    shifted = np.roll(x, shift)
    phase = np.exp(-2j * np.pi * shift * np.arange(n) / n)
    assert np.allclose(fft(shifted), fft(x) * phase, atol=1e-7 * n)


@settings(max_examples=30, deadline=None)
@given(n=COMPOSITE_SIZES, seed=st.integers(0, 2**31 - 1))
def test_two_layer_agrees_with_mixed_radix(n, seed):
    x = complex_vector(n, seed)
    assert np.allclose(TwoLayerPlan(n).execute(x), fft(x), atol=1e-8 * n)


@settings(max_examples=30, deadline=None)
@given(n=COMPOSITE_SIZES, seed=st.integers(0, 2**31 - 1))
def test_two_layer_independent_of_factorisation(n, seed):
    x = complex_vector(n, seed)
    m, k = balanced_split(n)
    default = TwoLayerPlan(n, m, k).execute(x)
    swapped = TwoLayerPlan(n, k, m).execute(x)
    assert np.allclose(default, swapped, atol=1e-8 * n)


@settings(max_examples=30, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_impulse_response_is_all_ones(n, seed):
    x = np.zeros(n, dtype=np.complex128)
    x[0] = 1.0
    assert np.allclose(fft(x), np.ones(n), atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_conjugate_symmetry_for_real_input(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(np.complex128)
    spectrum = fft(x)
    mirrored = np.conj(spectrum[(-np.arange(n)) % n])
    assert np.allclose(spectrum, mirrored, atol=1e-8 * max(n, 1))


@settings(max_examples=20, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1), scale=st.floats(1e-6, 1e6))
def test_scaling_homogeneity(n, seed, scale):
    x = complex_vector(n, seed)
    assert np.allclose(fft(scale * x), scale * fft(x), rtol=1e-9, atol=1e-9 * scale * n)

"""Tests for the compiled stage-program executor (the plan-time fast path)."""

import threading

import numpy as np
import pytest

from repro.fftlib import executor
from repro.fftlib.codelets import SUPPORTED_CODELET_SIZES
from repro.fftlib.dft import direct_dft
from repro.fftlib.executor import (
    StageProgram,
    clear_program_cache,
    compile_program,
    get_program,
    program_cache_info,
)
from repro.fftlib.plan import Plan, PlanDirection
from repro.fftlib.planner import Planner


MIXED_RADIX_SIZES = [12, 18, 30, 36, 60, 100, 120, 210, 243, 360, 500, 1024, 4096]
SMALL_PRIME_SIZES = [11, 13, 23, 37, 61]
LARGE_PRIME_SIZES = [67, 97, 127, 211]


class TestProgramLowering:
    def test_lowering_covers_the_size(self):
        program = compile_program(360)
        total = program.base
        for stage in program.stages:
            total *= stage.radix
        assert total == 360

    def test_codelet_size_is_a_single_kernel(self):
        program = compile_program(16)
        assert program.base_kind == "codelet"
        assert program.stages == ()

    def test_small_prime_uses_direct_matrix(self):
        program = compile_program(37)
        assert program.base_kind == "direct"
        assert program.base_matrix.shape == (37, 37)

    def test_large_prime_uses_bluestein(self):
        program = compile_program(127)
        assert program.base_kind == "bluestein"

    def test_stage_tables_have_stage_shapes(self):
        program = compile_program(4096)
        for stage in program.stages:
            assert stage.twiddle.shape == (stage.radix, stage.span)
            assert stage.matrix.shape == (stage.radix, stage.radix)
            assert stage.count * stage.radix * stage.span == 4096

    def test_describe_mentions_base_and_combines(self):
        text = compile_program(4096).describe()
        assert "base=" in text and "combine=" in text

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            StageProgram(0)
        with pytest.raises(ValueError):
            compile_program(360).execute(np.zeros(8, dtype=complex))


class TestExecutorMatchesDirectDFT:
    """Property tests: the compiled path equals the O(N^2) ground truth."""

    @pytest.mark.parametrize("n", MIXED_RADIX_SIZES)
    def test_mixed_radix_single(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(executor.fft(x), direct_dft(x))

    @pytest.mark.parametrize("n", SMALL_PRIME_SIZES)
    def test_small_primes_single(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(executor.fft(x), direct_dft(x))

    @pytest.mark.parametrize("n", LARGE_PRIME_SIZES)
    def test_large_primes_bluestein_single(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(executor.fft(x), direct_dft(x))

    @pytest.mark.parametrize("n", list(SUPPORTED_CODELET_SIZES))
    def test_codelet_sizes_single(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(executor.fft(x), direct_dft(x))

    @pytest.mark.parametrize(
        "n", MIXED_RADIX_SIZES[:6] + SMALL_PRIME_SIZES[:2] + LARGE_PRIME_SIZES[:2] + [16]
    )
    def test_batched_matches_single(self, n, random_complex, spectra_close):
        batch = random_complex(5 * n).reshape(5, n)
        got = executor.fft(batch)
        for row in range(5):
            spectra_close(got[row], direct_dft(batch[row]))

    @pytest.mark.parametrize("n", [30, 64, 67, 120])
    def test_matches_recursive_engine(self, n, random_complex, spectra_close):
        from repro.fftlib.mixed_radix import fft as recursive_fft

        x = random_complex(n)
        spectra_close(executor.fft(x), recursive_fft(x))

    @pytest.mark.parametrize("n", [36, 61, 97, 256])
    def test_inverse_round_trips(self, n, random_complex, spectra_close):
        x = random_complex(n)
        spectra_close(executor.ifft(executor.fft(x)), x)

    def test_along_axis(self, random_complex, spectra_close):
        x = random_complex(6 * 20).reshape(20, 6)
        spectra_close(executor.fft_along_axis(x, axis=0), np.fft.fft(x, axis=0))
        spectra_close(executor.ifft_along_axis(x, axis=0), np.fft.ifft(x, axis=0))

    def test_noncontiguous_input(self, random_complex, spectra_close):
        x = random_complex(2 * 48).reshape(48, 2).T  # non-contiguous rows
        spectra_close(executor.fft(x), np.fft.fft(x, axis=-1))

    def test_input_is_not_mutated(self, random_complex):
        x = random_complex(360)
        saved = x.copy()
        executor.fft(x)
        np.testing.assert_array_equal(x, saved)


class TestProgramCache:
    def test_hit_miss_counters(self):
        clear_program_cache()
        get_program(240)
        info = program_cache_info()
        assert (info.hits, info.misses) == (0, 1)
        get_program(240)
        info = program_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        assert info.size == 1

    def test_same_object_returned(self):
        clear_program_cache()
        assert get_program(360) is get_program(360)

    def test_plan_carries_the_cached_program(self):
        clear_program_cache()
        plan = Plan(480, backend="fftlib")
        assert plan.program is get_program(480)

    def test_planner_lower_returns_the_program(self):
        clear_program_cache()
        planner = Planner()
        assert planner.lower(480) is get_program(480)

    def test_backward_plan_uses_the_same_forward_program(self, random_complex, spectra_close):
        plan = Plan(96, PlanDirection.BACKWARD, backend="fftlib")
        x = random_complex(96)
        spectra_close(plan.execute(x), np.fft.ifft(x))

    def test_thread_safety_of_execution(self, random_complex):
        """Concurrent executes share a program but never scratch buffers."""

        program = get_program(480)
        x = random_complex(480)
        want = np.fft.fft(x)
        errors = []

        def worker():
            for _ in range(20):
                got = program.execute(x)
                if not np.allclose(got, want):
                    errors.append("mismatch")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

"""Tests for the hand-written small-size codelets."""

import numpy as np
import pytest

from repro.fftlib.codelets import (
    SUPPORTED_CODELET_SIZES,
    apply_codelet,
    codelet_flop_count,
    has_codelet,
)


class TestRegistry:
    def test_supported_sizes(self):
        assert set(SUPPORTED_CODELET_SIZES) == {1, 2, 3, 4, 5, 6, 7, 8, 16}

    def test_has_codelet(self):
        assert has_codelet(8)
        assert not has_codelet(9)

    def test_flop_count_known_sizes(self):
        assert codelet_flop_count(2) == 4
        assert codelet_flop_count(8) == 52

    def test_flop_count_fallback_positive(self):
        assert codelet_flop_count(32) > 0


class TestCorrectness:
    @pytest.mark.parametrize("n", SUPPORTED_CODELET_SIZES)
    def test_matches_numpy_single(self, n, random_complex):
        x = random_complex(n)
        assert np.allclose(apply_codelet(x, n), np.fft.fft(x), atol=1e-12)

    @pytest.mark.parametrize("n", SUPPORTED_CODELET_SIZES)
    def test_matches_numpy_batched(self, n, random_complex):
        x = random_complex(n * 7).reshape(7, n)
        assert np.allclose(apply_codelet(x, n), np.fft.fft(x, axis=-1), atol=1e-12)

    @pytest.mark.parametrize("n", SUPPORTED_CODELET_SIZES)
    def test_inverse_is_unnormalised_conjugate(self, n, random_complex):
        x = random_complex(n)
        inverse = apply_codelet(x, n, inverse=True)
        assert np.allclose(inverse, np.fft.ifft(x) * n, atol=1e-12)

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_multidimensional_batch(self, n, random_complex):
        x = random_complex(n * 6).reshape(2, 3, n)
        assert np.allclose(apply_codelet(x, n), np.fft.fft(x, axis=-1), atol=1e-12)

    def test_linearity(self, random_complex):
        x = random_complex(8)
        y = random_complex(8)
        lhs = apply_codelet(2.0 * x + 3.0 * y, 8)
        rhs = 2.0 * apply_codelet(x, 8) + 3.0 * apply_codelet(y, 8)
        assert np.allclose(lhs, rhs, atol=1e-12)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16, dtype=np.complex128)
        x[0] = 1.0
        assert np.allclose(apply_codelet(x, 16), np.ones(16), atol=1e-12)


class TestErrors:
    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            apply_codelet(np.zeros(9, dtype=complex), 9)

    def test_wrong_axis_length_raises(self):
        with pytest.raises(ValueError):
            apply_codelet(np.zeros(7, dtype=complex), 8)

"""Tests for the in-place Stockham stage programs.

Covers the tentpole guarantees: equivalence with the ping-pong programs
across mixed-radix / prime / batched inputs, the peak-scratch contract (at
most one half-size buffer beyond the caller's), in-place inverse round
trips, and the plan-layer lowering/fallback behaviour.
"""

from __future__ import annotations

import threading
import tracemalloc

import numpy as np
import pytest

from repro.fftlib import executor
from repro.fftlib.executor import (
    StockhamStageProgram,
    get_program,
    get_real_program,
    get_stockham_program,
    stockham_supported,
)
from repro.fftlib.plan import PlanDirection
from repro.fftlib.planner import Planner, PlannerPolicy, plan_fft

SUPPORTED_SIZES = [2, 4, 6, 8, 12, 16, 30, 48, 64, 96, 100, 120, 360, 1000, 1024, 4096]
UNSUPPORTED_SIZES = [1, 3, 7, 9, 15, 21, 97, 134]  # odd, primes, Bluestein half


class TestStockhamProgram:
    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_matches_numpy_and_pingpong(self, n, rng, spectra_close):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        program = get_stockham_program(n)
        reference = np.fft.fft(x)
        spectra_close(program.execute(x), reference)
        # in place: the caller's buffer receives the natural-order spectrum
        buf = x.copy()
        returned = program.execute_inplace(buf)
        assert returned is buf
        spectra_close(buf, reference)
        # and agrees with the ping-pong program to allclose tolerance
        assert np.allclose(buf, get_program(n).execute(x), atol=1e-9 * max(1.0, n))

    @pytest.mark.parametrize("n", [16, 48, 360, 1024])
    def test_batched_and_leading_axes(self, n, rng, spectra_close):
        X = rng.standard_normal((3, 5, n)) + 1j * rng.standard_normal((3, 5, n))
        program = get_stockham_program(n)
        buf = X.copy()
        program.execute_inplace(buf)
        spectra_close(buf, np.fft.fft(X, axis=-1))

    @pytest.mark.parametrize("n", [16, 100, 1024])
    def test_inverse_inplace_round_trip(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        program = get_stockham_program(n)
        buf = x.copy()
        program.execute_inplace(buf)
        program.execute_inverse_inplace(buf)
        assert np.allclose(buf, x, atol=1e-10)

    @pytest.mark.parametrize("n", UNSUPPORTED_SIZES)
    def test_unsupported_sizes_report_and_raise(self, n):
        assert not stockham_supported(n)
        with pytest.raises(ValueError):
            StockhamStageProgram(n)

    def test_rejects_bad_buffers(self, rng):
        program = get_stockham_program(64)
        with pytest.raises(ValueError):
            program.execute_inplace(np.zeros(64, dtype=np.float64))
        with pytest.raises(ValueError):
            program.execute_inplace(np.zeros(63, dtype=np.complex128))
        noncontig = np.zeros((64, 2), dtype=np.complex128)[:, 0]
        with pytest.raises(ValueError):
            program.execute_inplace(noncontig)

    def test_shares_half_program_with_pingpong_path(self):
        program = get_stockham_program(256)
        assert program.program is get_program(128)
        assert "inplace" in program.describe()

    def test_cached_in_shared_lru(self):
        a = get_stockham_program(512)
        b = get_stockham_program(512)
        assert a is b

    def test_thread_safety(self, rng, spectra_close):
        n = 1024
        program = get_stockham_program(n)
        X = rng.standard_normal((8, n)) + 1j * rng.standard_normal((8, n))
        reference = np.fft.fft(X, axis=-1)
        results = {}

        def worker(i):
            buf = X[i].copy()
            program.execute_inplace(buf)
            results[i] = buf

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(8):
            spectra_close(results[i], reference[i])


class TestScratchAccounting:
    def test_peak_scratch_at_2_20_is_at_most_half(self, rng):
        """The acceptance criterion: 2^20 in place = one half-size scratch.

        numpy data allocations are tracemalloc-traced, so the measured peak
        covers hidden temporaries too, not just our explicit scratch.
        """

        n = 1 << 20
        program = get_stockham_program(n)  # compile outside the window
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        buf = x.copy()
        # drop any previously grown thread-local scratch so the cold-start
        # allocation (exactly one half-size buffer) is inside the window
        if hasattr(executor._tls, "stockham"):
            del executor._tls.stockham
        tracemalloc.start()
        program.execute_inplace(buf)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        half_bytes = n * 16 // 2
        assert peak <= half_bytes * 1.10, (
            f"peak {peak} bytes exceeds the half-size scratch budget {half_bytes}"
        )
        # warm runs reuse the scratch: effectively allocation-free
        tracemalloc.start()
        program.execute_inplace(buf)
        _, warm_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert warm_peak <= half_bytes * 0.05
        # the second in-place run transformed the first run's spectrum:
        # correctness still holds (matches a double transform of x)
        reference = np.fft.fft(np.fft.fft(x))
        err = np.max(np.abs(buf - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_scratch_is_separate_from_pingpong_buffers(self, rng):
        n = 4096
        program = get_stockham_program(n)
        buf = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).copy()
        program.execute_inplace(buf)
        scratch = executor._tls.stockham
        assert scratch.size >= n // 2
        pair = getattr(executor._tls, "buffers", None)
        if pair is not None:
            assert scratch is not pair[0] and scratch is not pair[1]


class TestExecuteInto:
    @pytest.mark.parametrize("n", [8, 48, 128, 1000])
    def test_result_lands_in_work_buffer(self, n, rng, spectra_close):
        x = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        reference = np.fft.fft(x, axis=-1)
        data = x.copy()  # clobbered: execute_into uses it as staging
        work = np.empty_like(data)
        program = get_program(n)
        if program.base_kind == "bluestein":
            pytest.skip("Bluestein bases are excluded from execute_into")
        returned = program.execute_into(data, work)
        assert returned is work
        spectra_close(work, reference)

    def test_strided_rows_are_views_not_copies(self, rng, spectra_close):
        # the Stockham path hands execute_into row-strided halves of the
        # caller's buffer; the transform must land in those rows
        n = 64
        big = np.zeros((3, 2 * n), dtype=np.complex128)
        x = rng.standard_normal((3, n)) + 1j * rng.standard_normal((3, n))
        big[:, :n] = x
        data = big[:, :n]
        work = big[:, n:]
        get_program(n).execute_into(data, work)
        spectra_close(big[:, n:], np.fft.fft(x, axis=-1))

    def test_bluestein_base_rejected(self):
        program = get_program(67)  # prime > 61: Bluestein
        data = np.zeros((1, 67), dtype=np.complex128)
        with pytest.raises(ValueError):
            program.execute_into(data, np.empty_like(data))


class TestPlanLayerLowering:
    def test_plan_lowers_stockham_when_supported(self):
        plan = plan_fft(2048, backend="fftlib", inplace=True)
        assert plan.inplace
        assert isinstance(plan.program, StockhamStageProgram)

    def test_plan_falls_back_for_unsupported_sizes(self, rng, spectra_close):
        plan = plan_fft(134, backend="fftlib", inplace=True)  # half = 67 = Bluestein
        assert not isinstance(plan.program, StockhamStageProgram)
        x = rng.standard_normal(134) + 1j * rng.standard_normal(134)
        buf = x.copy()
        plan.execute_inplace(buf)  # semantics preserved via copy-back
        spectra_close(buf, np.fft.fft(x))

    def test_execute_inplace_backward_direction(self, rng):
        n = 512
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        plan = plan_fft(n, PlanDirection.BACKWARD, backend="fftlib", inplace=True)
        buf = np.fft.fft(x).copy()
        plan.execute_inplace(buf)
        assert np.allclose(buf, x, atol=1e-10)

    def test_real_plans_reject_execute_inplace(self):
        plan = plan_fft(64, backend="fftlib", real=True)
        with pytest.raises(ValueError):
            plan.execute_inplace(np.zeros(64, dtype=np.complex128))

    def test_execute_inplace_rejects_wrong_dtype_upfront(self):
        plan = plan_fft(8, backend="fftlib", inplace=True)
        with pytest.raises(ValueError, match="complex128"):
            plan.execute_inplace(np.zeros(8, dtype=np.float64))

    def test_inplace_wisdom_key_is_distinct(self):
        planner = Planner()
        a = planner.plan(256, inplace=True)
        b = planner.plan(256)
        assert a is not b
        assert a is planner.plan(256, inplace=True)

    def test_measure_mode_records_inplace_timings(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.plan(4096, inplace=True)
        assert "4096" in planner.inplace_measurements
        timings = planner.inplace_measurements["4096"]
        assert set(timings) == {"pingpong", "stockham"}

    def test_wisdom_export_import_round_trip(self):
        planner = Planner()
        planner.plan(512, inplace=True)
        data = planner.export_wisdom()
        assert "512:forward:fftlib:ip" in data
        fresh = Planner()
        fresh.import_wisdom(data)
        key = (512, PlanDirection.FORWARD, "fftlib", False, 1, True, False)
        assert key in fresh.wisdom
        assert fresh.wisdom[key].inplace

    def test_import_honours_recorded_inplace_loser(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.import_wisdom(
            {
                "512:forward:fftlib:ip": "mixed-radix",
                "__inplace_measurements__": {
                    "512": {"pingpong": 0.001, "stockham": 0.005}
                },
            }
        )
        key = (512, PlanDirection.FORWARD, "fftlib", False, 1, True, False)
        # recorded winner: ping-pong - the plan keeps the ping-pong program
        assert not planner.wisdom[key].inplace


class TestRealOverwrite:
    @pytest.mark.parametrize("n", [16, 64, 4096, 1000])
    def test_execute_overwrite_destroys_input(self, n, rng, spectra_close):
        program = get_real_program(n)
        x = rng.standard_normal(n)
        buf = x.copy()
        out = program.execute_overwrite(buf)
        spectra_close(out, np.fft.rfft(x))
        if program.supports_overwrite:
            assert not np.allclose(buf, x)

    def test_odd_length_degrades_to_out_of_place(self, rng, spectra_close):
        program = get_real_program(63)
        assert not program.supports_overwrite
        x = rng.standard_normal(63)
        buf = x.copy()
        out = program.execute_overwrite(buf)
        spectra_close(out, np.fft.rfft(x))
        assert np.array_equal(buf, x)  # input untouched on the fallback

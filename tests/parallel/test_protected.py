"""Tests for the protected in-place FFT (Fig. 4) and the three-layer scheme."""

import numpy as np
import pytest

from repro.core.detection import FTReport
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.parallel.protected import ProtectedInPlaceFFT, ProtectedThreeLayerFFT


class TestProtectedInPlaceFFT:
    def test_fault_free_transform_matches_numpy(self, random_complex):
        size, batch = 8, 12
        matrix = random_complex(size * batch).reshape(size, batch)
        expected = np.fft.fft(matrix, axis=0)
        plan = ProtectedInPlaceFFT(size)
        plan.execute_inplace(matrix)
        assert np.allclose(matrix, expected, atol=1e-9)

    def test_result_written_in_place(self, random_complex):
        matrix = random_complex(32).reshape(8, 4)
        plan = ProtectedInPlaceFFT(8)
        returned = plan.execute_inplace(matrix)
        assert returned is matrix

    def test_fault_free_report_is_clean(self, random_complex):
        matrix = random_complex(64).reshape(8, 8)
        report = FTReport()
        ProtectedInPlaceFFT(8).execute_inplace(matrix, report=report)
        assert not report.detected

    def test_computational_fault_corrected_from_backup(self, random_complex):
        size, batch = 8, 16
        matrix = random_complex(size * batch).reshape(size, batch)
        expected = np.fft.fft(matrix, axis=0)
        injector = FaultInjector().arm_computational(
            FaultSite.RANK_LOCAL_FFT, index=5, magnitude=20.0
        )
        report = FTReport()
        ProtectedInPlaceFFT(size).execute_inplace(matrix, injector=injector, report=report)
        assert injector.fired_count == 1
        assert report.detected
        assert report.recompute_count >= 1
        assert np.allclose(matrix, expected, atol=1e-9)

    def test_multiple_column_faults_corrected(self, random_complex):
        size, batch = 8, 16
        matrix = random_complex(size * batch).reshape(size, batch)
        expected = np.fft.fft(matrix, axis=0)
        injector = (
            FaultInjector()
            .arm_computational(FaultSite.RANK_LOCAL_FFT, index=2, magnitude=5.0)
            .arm_computational(FaultSite.RANK_LOCAL_FFT, index=9, magnitude=3.0)
        )
        ProtectedInPlaceFFT(size).execute_inplace(matrix, injector=injector)
        assert np.allclose(matrix, expected, atol=1e-9)

    def test_wrong_shape_rejected(self, random_complex):
        with pytest.raises(ValueError):
            ProtectedInPlaceFFT(8).execute_inplace(random_complex(12).reshape(4, 3))


class TestProtectedThreeLayerFFT:
    @pytest.mark.parametrize("n", [8, 32, 128, 512, 2048])
    def test_fault_free_matches_numpy(self, n, random_complex, spectra_close):
        x = random_complex(n)
        out = ProtectedThreeLayerFFT(n).execute(x)
        spectra_close(out, np.fft.fft(x))

    def test_decomposition_has_small_r(self):
        scheme = ProtectedThreeLayerFFT(2048)
        assert scheme.r * scheme.k * scheme.k == 2048
        assert scheme.r in (1, 2, 8)

    def test_fault_free_report_clean(self, random_complex):
        report = FTReport()
        ProtectedThreeLayerFFT(128).execute(random_complex(128), report=report)
        assert not report.detected

    def test_layer1_fault_detected_and_corrected(self, random_complex, spectra_close):
        n = 512
        x = random_complex(n)
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=10.0)
        report = FTReport()
        out = ProtectedThreeLayerFFT(n).execute(x, injector=injector, report=report)
        assert report.detected
        spectra_close(out, np.fft.fft(x))

    def test_layer3_fault_detected_and_corrected(self, random_complex, spectra_close):
        n = 512
        x = random_complex(n)
        injector = FaultInjector().arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=10.0)
        report = FTReport()
        out = ProtectedThreeLayerFFT(n).execute(x, injector=injector, report=report)
        assert report.detected
        spectra_close(out, np.fft.fft(x))

    def test_middle_layer_fault_corrected_by_dmr(self, random_complex, spectra_close):
        n = 512
        x = random_complex(n)
        injector = FaultInjector().arm_computational(FaultSite.TWIDDLE_COMPUTE, magnitude=10.0)
        report = FTReport()
        out = ProtectedThreeLayerFFT(n).execute(x, injector=injector, report=report)
        assert report.dmr_correction_count >= 1
        spectra_close(out, np.fft.fft(x))

    def test_explicit_factors(self, random_complex, spectra_close):
        x = random_complex(72)
        out = ProtectedThreeLayerFFT(72, r=2, k=6).execute(x)
        spectra_close(out, np.fft.fft(x))

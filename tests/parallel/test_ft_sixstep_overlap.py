"""Tests for the parallel FT scheme (Fig. 6) and the Algorithm 3 overlap."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.parallel.ft_sixstep import ParallelFTFFT
from repro.parallel.overlap import OverlapSchedule, PipelineTrace, pipelined_transpose
from repro.parallel.sixstep import ParallelFFT
from repro.simmpi.comm import DistributedVector, SimCommunicator


class TestOverlapSchedule:
    def test_each_rank_visits_every_peer_once(self):
        schedule = OverlapSchedule(8)
        for rank in range(8):
            assert sorted(schedule.peers(rank)) == list(range(8))

    def test_ranks_start_with_distinct_peers(self):
        schedule = OverlapSchedule(8)
        first_peers = {schedule.peers(rank)[0] for rank in range(8)}
        assert len(first_peers) == 8


class TestPipelinedTranspose:
    def test_matches_blocking_transpose(self, random_complex):
        p = 4
        x = random_complex(64)
        blocking = SimCommunicator(p, protect_messages=False)
        pipelined = SimCommunicator(p, protect_messages=False)
        want = blocking.transpose(DistributedVector.from_global(x, p)).to_global()
        got = pipelined_transpose(pipelined, DistributedVector.from_global(x, p)).to_global()
        assert np.allclose(got, want)

    def test_process_hook_applied_to_every_block(self, random_complex):
        p = 4
        x = random_complex(64)
        comm = SimCommunicator(p, protect_messages=False)
        seen = []

        def process(rank, peer, block):
            seen.append((rank, peer))
            return block

        pipelined_transpose(comm, DistributedVector.from_global(x, p), process=process)
        assert len(seen) == p * p

    def test_generate_hook_can_transform_blocks(self, random_complex):
        p = 2
        x = random_complex(16)
        comm = SimCommunicator(p, protect_messages=False)
        out = pipelined_transpose(
            comm, DistributedVector.from_global(x, p), generate=lambda r, peer, b: 2.0 * b
        )
        plain = SimCommunicator(p, protect_messages=False).transpose(
            DistributedVector.from_global(x, p)
        )
        assert np.allclose(out.to_global(), 2.0 * plain.to_global())

    def test_trace_records_overlapped_work(self, random_complex):
        p = 4
        comm = SimCommunicator(p, protect_messages=False)
        trace = PipelineTrace()
        pipelined_transpose(
            comm,
            DistributedVector.from_global(random_complex(64), p),
            process=lambda r, peer, b: b,
            trace=trace,
        )
        assert trace.items_for(0)
        assert any(e.startswith("isend") for e in trace.events)

    def test_in_transit_fault_repaired(self, random_complex):
        p = 4
        x = random_complex(64)
        injector = FaultInjector().arm_memory(FaultSite.COMM_BLOCK, magnitude=40.0)
        comm = SimCommunicator(p, injector=injector, protect_messages=True)
        got = pipelined_transpose(comm, DistributedVector.from_global(x, p)).to_global()
        want = SimCommunicator(p, protect_messages=False).transpose(
            DistributedVector.from_global(x, p)
        ).to_global()
        assert np.allclose(got, want, atol=1e-8)


class TestParallelFTCorrectness:
    @pytest.mark.parametrize("n,p", [(64, 4), (256, 4), (1024, 8), (4096, 8), (2**14, 16)])
    def test_fault_free_matches_numpy(self, n, p, random_complex, spectra_close):
        x = random_complex(n)
        execution = ParallelFTFFT(n, p).execute(x)
        spectra_close(execution.output, np.fft.fft(x))
        assert not execution.report.detected

    @pytest.mark.parametrize("overlap", [False, True])
    def test_overlap_variant_matches(self, overlap, random_complex, spectra_close):
        x = random_complex(4096)
        execution = ParallelFTFFT(4096, 8, overlap=overlap).execute(x)
        spectra_close(execution.output, np.fft.fft(x))

    @pytest.mark.parametrize("strategy", ["two-layer", "three-layer"])
    def test_fft2_strategies(self, strategy, random_complex, spectra_close):
        x = random_complex(1024)
        execution = ParallelFTFFT(1024, 4, fft2_strategy=strategy).execute(x)
        spectra_close(execution.output, np.fft.fft(x))

    def test_auto_strategy_selects_three_layer_for_non_square(self):
        assert ParallelFTFFT(1024, 8).fft2_strategy == "three-layer"  # q = 128
        assert ParallelFTFFT(1024, 4).fft2_strategy == "two-layer"    # q = 256

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            ParallelFTFFT(64, 4, fft2_strategy="magic")


class TestParallelFTFaults:
    def test_fft1_computational_fault_corrected(self, random_complex, spectra_close):
        x = random_complex(4096)
        injector = FaultInjector().arm_computational(
            FaultSite.RANK_LOCAL_FFT, rank=3, magnitude=15.0
        )
        execution = ParallelFTFFT(4096, 8).execute(x, injector)
        assert injector.fired_count == 1
        assert execution.report.detected
        spectra_close(execution.output, np.fft.fft(x))

    def test_fft2_computational_fault_corrected(self, random_complex, spectra_close):
        x = random_complex(4096)
        injector = FaultInjector().arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=8.0)
        execution = ParallelFTFFT(4096, 8).execute(x, injector)
        spectra_close(execution.output, np.fft.fft(x))

    def test_comm_block_fault_corrected(self, random_complex, spectra_close):
        x = random_complex(4096)
        injector = FaultInjector().arm_memory(FaultSite.COMM_BLOCK, rank=1, magnitude=25.0)
        execution = ParallelFTFFT(4096, 8).execute(x, injector)
        assert execution.communicator.corrected_blocks >= 1
        spectra_close(execution.output, np.fft.fft(x))

    def test_two_memory_two_computational(self, random_complex, spectra_close):
        """The Table 2/3 scenario: 2 memory + 2 computational faults."""

        x = random_complex(2**14)
        injector = (
            FaultInjector()
            .arm_memory(FaultSite.COMM_BLOCK, rank=0, magnitude=30.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=5, magnitude=12.0)
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=2, magnitude=9.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, magnitude=4.0)
        )
        execution = ParallelFTFFT(2**14, 16).execute(x, injector)
        assert injector.fired_count == 4
        spectra_close(execution.output, np.fft.fft(x))

    def test_faults_with_overlap_enabled(self, random_complex, spectra_close):
        x = random_complex(4096)
        injector = (
            FaultInjector()
            .arm_computational(FaultSite.RANK_LOCAL_FFT, rank=1, magnitude=5.0)
            .arm_memory(FaultSite.COMM_BLOCK, rank=2, magnitude=7.0)
        )
        execution = ParallelFTFFT(4096, 8, overlap=True).execute(x, injector)
        spectra_close(execution.output, np.fft.fft(x))


class TestParallelFTTimeline:
    def test_ft_costs_exceed_unprotected(self):
        base = ParallelFFT(2**18, 16).predict_timeline().elapsed
        ft = ParallelFTFFT(2**18, 16).predict_timeline().elapsed
        assert ft > base

    def test_overlap_reduces_virtual_time(self):
        ft = ParallelFTFFT(2**18, 16).predict_timeline().elapsed
        opt = ParallelFTFFT(2**18, 16, overlap=True).predict_timeline().elapsed
        assert opt < ft

    def test_overlapped_ft_close_to_opt_fftw(self):
        """The paper's headline parallel claim: opt-FT-FFTW is comparable to
        the (optimized) unprotected library."""

        opt_fftw = ParallelFFT(2**20, 16, overlap_twiddle=True).predict_timeline().elapsed
        opt_ft = ParallelFTFFT(2**20, 16, overlap=True).predict_timeline().elapsed
        assert opt_ft < 1.5 * opt_fftw

    def test_execute_and_predict_agree(self, random_complex):
        scheme = ParallelFTFFT(1024, 4)
        predicted = scheme.predict_timeline().elapsed
        executed = scheme.execute(random_complex(1024)).virtual_time
        assert predicted == pytest.approx(executed, rel=1e-9)

    def test_fault_injection_does_not_change_virtual_time(self, random_complex):
        """Tables 2 and 3: recovery is too cheap to see in the totals."""

        x = random_complex(4096)
        clean = ParallelFTFFT(4096, 8).execute(x).virtual_time
        injector = FaultInjector().arm_computational(
            FaultSite.RANK_LOCAL_FFT, rank=0, magnitude=5.0
        )
        faulty = ParallelFTFFT(4096, 8).execute(x, injector).virtual_time
        assert faulty == pytest.approx(clean, rel=1e-6)

"""Tests for the unprotected six-step parallel FFT."""

import numpy as np
import pytest

from repro.parallel.sixstep import ParallelFFT
from repro.simmpi.machine import LAPTOP_LIKE


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(16, 2), (64, 4), (256, 4), (512, 8), (1024, 8), (4096, 8), (2**14, 16)])
    def test_matches_numpy(self, n, p, random_complex, spectra_close):
        x = random_complex(n)
        execution = ParallelFFT(n, p).execute(x)
        spectra_close(execution.output, np.fft.fft(x))

    def test_single_rank_degenerates_to_sequential(self, random_complex, spectra_close):
        x = random_complex(64)
        execution = ParallelFFT(64, 1).execute(x)
        spectra_close(execution.output, np.fft.fft(x))

    def test_overlap_variant_same_result(self, random_complex):
        x = random_complex(1024)
        a = ParallelFFT(1024, 8).execute(x).output
        b = ParallelFFT(1024, 8, overlap_twiddle=True).execute(x).output
        assert np.allclose(a, b, atol=1e-10)

    def test_size_must_divide_by_ranks_squared(self):
        with pytest.raises(ValueError):
            ParallelFFT(100, 8)

    def test_wrong_input_length_rejected(self, random_complex):
        with pytest.raises(ValueError):
            ParallelFFT(64, 4).execute(random_complex(32))


class TestTimelineAndCosts:
    def test_execution_produces_timeline_phases(self, random_complex):
        execution = ParallelFFT(256, 4).execute(random_complex(256))
        names = {p.name for p in execution.timeline.phases}
        assert {"transpose-1", "fft-1", "fft-2", "transpose-3", "local-reorder"} <= names
        assert execution.virtual_time > 0

    def test_overlap_reduces_or_equals_virtual_time(self, random_complex):
        x = random_complex(4096)
        plain = ParallelFFT(4096, 8).execute(x).virtual_time
        overlapped = ParallelFFT(4096, 8, overlap_twiddle=True).execute(x).virtual_time
        assert overlapped <= plain + 1e-12

    def test_predict_timeline_matches_executed_costs(self, random_complex):
        pfft = ParallelFFT(1024, 8)
        predicted = pfft.predict_timeline().elapsed
        executed = pfft.execute(random_complex(1024)).virtual_time
        assert predicted == pytest.approx(executed, rel=1e-9)

    def test_predict_timeline_scales_with_problem_size(self):
        small = ParallelFFT(2**16, 16).predict_timeline().elapsed
        large = ParallelFFT(2**20, 16).predict_timeline().elapsed
        assert large > small

    def test_machine_model_changes_prediction(self):
        default = ParallelFFT(2**16, 16).predict_timeline().elapsed
        laptop = ParallelFFT(2**16, 16, machine=LAPTOP_LIKE).predict_timeline().elapsed
        assert default != laptop

    def test_weak_scaling_prediction_grows_roughly_linearly(self):
        # Large enough that bandwidth/compute (not per-message latency)
        # dominate, as in the paper's weak-scaling regime.
        p = 16
        t1 = ParallelFFT(2**24, p).predict_timeline().elapsed
        t2 = ParallelFFT(2**25, p).predict_timeline().elapsed
        assert 1.5 < t2 / t1 < 2.6

    def test_communicator_counts_bytes(self, random_complex):
        execution = ParallelFFT(1024, 8).execute(random_complex(1024))
        # three transposes move every element once each
        assert execution.communicator.bytes_sent == 3 * 1024 * 16

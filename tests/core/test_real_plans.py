"""Real-input FTPlans: packed-layout protection, fault recovery, wisdom keys."""

import numpy as np
import pytest

import repro
from repro.core.config import FTConfig
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def bitflip(site, element, bit=55, **kwargs):
    return FaultInjector(
        specs=[FaultSpec(site=site, element=element, kind=FaultKind.BIT_FLIP, bit=bit, **kwargs)]
    )


class TestRealConfig:
    def test_name_round_trip(self):
        config = FTConfig.from_name("opt-online+mem+real")
        assert config.real
        assert config.to_name() == "opt-online+mem+real"
        assert not FTConfig.from_name("opt-online+mem").real

    def test_real_flag_in_cache_key(self):
        complex_plan = repro.plan(128, "opt-online+mem")
        real_plan = repro.plan(128, "opt-online+mem", real=True)
        assert complex_plan is not real_plan
        assert repro.plan(128, "opt-online+mem", real=True) is real_plan

    def test_schemes_built_real_return_packed(self, rng):
        x = rng.standard_normal(64)
        for name in ("fftw", "opt-offline+mem", "online", "opt-online+mem"):
            scheme = FTConfig.from_name(name, real=True).build(64)
            result = scheme.execute(x)
            assert result.output.shape == (33,)
            assert np.allclose(result.output, np.fft.rfft(x), atol=1e-9), name


class TestRealExecution:
    @pytest.mark.parametrize("n", [64, 96, 250, 81, 255])  # even, odd
    @pytest.mark.parametrize("name", ["opt-online+mem", "opt-offline+mem", "fftw"])
    def test_matches_numpy_rfft(self, n, name, rng):
        plan = repro.plan(n, name, real=True)
        x = rng.standard_normal(n)
        result = plan.execute(x)
        assert result.output.shape == (n // 2 + 1,)
        assert np.allclose(result.output, np.fft.rfft(x), atol=1e-10)
        assert not result.report.detected

    @pytest.mark.parametrize("n", [64, 81])
    def test_batched_matches_numpy_rfft(self, n, rng):
        plan = repro.plan(n, real=True)
        X = rng.standard_normal((7, n))
        batch = plan.execute_many(X)
        assert batch.output.shape == (7, n // 2 + 1)
        assert np.allclose(batch.output, np.fft.rfft(X, axis=-1), atol=1e-10)
        # arbitrary axis
        batch = plan.execute_many(X.T, axis=0)
        assert batch.output.shape == (n // 2 + 1, 7)
        assert np.allclose(batch.output, np.fft.rfft(X, axis=-1).T, atol=1e-10)

    def test_inverse_round_trip(self, rng):
        plan = repro.plan(128, real=True)
        x = rng.standard_normal(128)
        spectrum = plan.execute(x).output
        back = plan.inverse(spectrum)
        assert np.isrealobj(back.output)
        assert np.allclose(back.output, x, atol=1e-9)

    def test_rejects_complex_input(self, rng):
        plan = repro.plan(64, real=True)
        with pytest.raises(ValueError):
            plan.execute(rng.standard_normal(64) + 1j)

    def test_complex64_dtype_halves_precision(self, rng):
        plan = repro.plan(64, real=True, dtype="complex64")
        x = rng.standard_normal(64)
        assert plan.execute(x).output.dtype == np.complex64
        assert plan.inverse(np.fft.rfft(x)).output.dtype == np.float32


class TestRealFaultRecovery:
    @pytest.mark.parametrize("bit", [50, 55, 62])
    def test_packed_output_bitflip_corrected_scalar(self, bit, rng):
        n = 256
        plan = repro.plan(n, real=True)
        x = rng.standard_normal(n)
        injector = bitflip(FaultSite.OUTPUT, element=9, bit=bit)
        result = plan.execute(x, injector)
        assert injector.fired_count == 1
        assert result.output.shape == (n // 2 + 1,)
        assert np.allclose(result.output, np.fft.rfft(x), atol=1e-8)
        assert result.report.detected and result.report.corrected

    def test_interior_fault_corrected_through_online_machinery(self, rng):
        n = 256
        plan = repro.plan(n, real=True)
        x = rng.standard_normal(n)
        injector = FaultInjector(
            specs=[
                FaultSpec(
                    site=FaultSite.STAGE1_COMPUTE,
                    index=3,
                    element=2,
                    kind=FaultKind.ADD_CONSTANT,
                    magnitude=25.0,
                )
            ]
        )
        result = plan.execute(x, injector)
        assert injector.fired_count == 1
        assert np.allclose(result.output, np.fft.rfft(x), atol=1e-8)
        assert result.report.corrected

    def test_batched_input_bitflip_recovered(self, rng):
        n = 128
        plan = repro.plan(n, real=True)
        X = rng.standard_normal((6, n))
        injector = bitflip(FaultSite.INPUT, element=n + 5)  # row 1, element 5
        batch = plan.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert np.allclose(batch.output, np.fft.rfft(X, axis=-1), atol=1e-8)
        assert batch.detected and len(batch.fallback_rows) >= 1

    def test_batched_packed_output_fault_recovered(self, rng):
        n = 128
        plan = repro.plan(n, real=True)
        X = rng.standard_normal((4, n))
        injector = FaultInjector(
            specs=[
                FaultSpec(
                    site=FaultSite.OUTPUT,
                    element=40,
                    kind=FaultKind.SET_CONSTANT,
                    magnitude=77.0,
                )
            ]
        )
        batch = plan.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert np.allclose(batch.output, np.fft.rfft(X, axis=-1), atol=1e-8)

    def test_inverse_packed_input_fault_corrected(self, rng):
        n = 128
        plan = repro.plan(n, real=True)
        x = rng.standard_normal(n)
        spectrum = np.fft.rfft(x)
        injector = bitflip(FaultSite.INPUT, element=11, bit=56)
        result = plan.inverse(spectrum, injector)
        assert injector.fired_count == 1
        assert np.allclose(result.output, x, atol=1e-8)
        assert result.report.corrected

    def test_offline_real_output_fault_restarts(self, rng):
        n = 128
        plan = repro.plan(n, "opt-offline+mem", real=True)
        x = rng.standard_normal(n)
        injector = FaultInjector(
            specs=[
                FaultSpec(
                    site=FaultSite.OUTPUT,
                    element=3,
                    kind=FaultKind.ADD_CONSTANT,
                    magnitude=40.0,
                )
            ]
        )
        result = plan.execute(x, injector)
        assert injector.fired_count == 1
        assert np.allclose(result.output, np.fft.rfft(x), atol=1e-8)
        assert result.report.corrected

"""Threaded FTPlan behaviour: config knob, chunk-parallel batches, per-worker
ABFT, interior real verification, and plan-cache thread safety."""

import threading

import numpy as np
import pytest

import repro
from repro.core.config import FTConfig
from repro.core.ftplan import FTPlan, clear_plan_cache, plan, plan_cache_info
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite


def _complex_batch(batch, n, seed=11):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, n)) + 1j * rng.standard_normal((batch, n))


class TestConfigThreads:
    def test_name_suffix_roundtrip(self):
        assert FTConfig(threads=4).to_name() == "opt-online+mem+t4"
        cfg = FTConfig.from_name("opt-online+mem+t4")
        assert cfg.threads == 4 and not cfg.real

    def test_real_and_threads_compose(self):
        cfg = FTConfig.from_name("opt-online+mem+real+t2")
        assert cfg.real and cfg.threads == 2
        assert cfg.to_name() == "opt-online+mem+real+t2"

    def test_auto_threads_suffix(self):
        cfg = FTConfig.from_name("fftw+t0")
        assert cfg.threads == 0
        assert cfg.to_name() == "fftw+t0"

    def test_none_override_does_not_swallow_suffix(self):
        # The CLI forwards threads=None verbatim; a name's +t{N} must win
        # over the unset sentinel (and +real over real=False).
        cfg = FTConfig.from_name("opt-online+mem+t4", threads=None)
        assert cfg.threads == 4
        cfg = FTConfig.from_name("opt-online+mem+real+t2", threads=None, real=False)
        assert cfg.threads == 2 and cfg.real

    def test_explicit_override_beats_suffix(self):
        assert FTConfig.from_name("opt-online+mem+t4", threads=8).threads == 8

    def test_default_is_serial(self):
        assert FTConfig().threads is None
        assert FTConfig().to_name() == "opt-online+mem"

    def test_validation(self):
        with pytest.raises(ValueError):
            FTConfig(threads=-2)
        with pytest.raises(ValueError):
            FTConfig(threads=1.5)

    def test_describe_mentions_threads(self):
        assert "threads=4" in FTConfig(threads=4).describe()

    def test_plan_cache_key_includes_threads(self):
        serial = repro.plan(2048)
        threaded = repro.plan(2048, threads=2)
        assert serial is not threaded
        assert repro.plan(2048, threads=2) is threaded
        assert threaded.threads == 2


class TestChunkParallelBatches:
    @pytest.mark.parametrize("scheme", ["fftw", "opt-offline+mem", "opt-online+mem"])
    def test_threaded_matches_serial_and_numpy(self, scheme):
        n, batch = 1024, 10
        X = _complex_batch(batch, n)
        serial = plan(n, FTConfig.from_name(scheme))
        threaded = plan(n, FTConfig.from_name(scheme, threads=4))
        ref = np.fft.fft(X, axis=-1)
        out_serial = serial.execute_many(X)
        out_threaded = threaded.execute_many(X)
        assert np.allclose(out_threaded.output, ref)
        assert np.allclose(out_threaded.output, out_serial.output)
        assert not out_threaded.detected
        assert out_threaded.fallback_rows == ()

    def test_threaded_repeatable(self):
        n = 1024
        X = _complex_batch(6, n, seed=5)
        threaded = plan(n, threads=3)
        first = threaded.execute_many(X).output
        for _ in range(3):
            assert np.array_equal(first, threaded.execute_many(X).output)

    def test_real_mode_chunk_parallel(self):
        n = 1024
        rng = np.random.default_rng(9)
        X = rng.standard_normal((8, n))
        threaded = plan(n, real=True, threads=4)
        batch = threaded.execute_many(X)
        assert np.allclose(batch.output, np.fft.rfft(X, axis=-1))
        assert not batch.detected

    def test_batch_smaller_than_threads(self):
        n = 1024
        X = _complex_batch(2, n, seed=6)
        threaded = plan(n, threads=8)
        assert np.allclose(threaded.execute_many(X).output, np.fft.fft(X, axis=-1))

    def test_single_row_batch(self):
        n = 1024
        X = _complex_batch(1, n, seed=8)
        threaded = plan(n, threads=4)
        assert np.allclose(threaded.execute_many(X).output, np.fft.fft(X, axis=-1))


class TestPerWorkerABFT:
    def test_fault_in_one_worker_chunk_is_located_and_corrected(self):
        n, batch, threads = 1024, 8, 4
        X = _complex_batch(batch, n, seed=13)
        threaded = plan(n, threads=threads)
        # chunk 2 of 4 covers rows 4..5; pin the OUTPUT fault to that worker
        injector = FaultInjector().arm_memory(
            site=FaultSite.OUTPUT, index=2, magnitude=300.0
        )
        result = threaded.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert result.detected
        assert not result.uncorrectable
        assert all(4 <= row < 6 for row in result.fallback_rows)
        assert np.allclose(result.output, np.fft.fft(X, axis=-1))

    def test_unpinned_fault_strikes_exactly_one_chunk(self):
        n, batch = 1024, 8
        X = _complex_batch(batch, n, seed=14)
        threaded = plan(n, threads=4)
        injector = FaultInjector().arm_memory(site=FaultSite.OUTPUT, magnitude=300.0)
        result = threaded.execute_many(X, injector=injector)
        assert injector.fired_count == 1  # fire_once: one worker's chunk
        assert not result.uncorrectable
        assert np.allclose(result.output, np.fft.fft(X, axis=-1))

    def test_input_fault_repaired_under_threads(self):
        n, batch = 1024, 8
        X = _complex_batch(batch, n, seed=15)
        threaded = plan(n, threads=4)
        injector = FaultInjector().arm_memory(site=FaultSite.INPUT, magnitude=200.0)
        result = threaded.execute_many(X, injector=injector)
        assert not result.uncorrectable
        assert np.allclose(result.output, np.fft.fft(X, axis=-1))

    def test_real_mode_worker_fault_recovered(self):
        n, batch = 1024, 8
        rng = np.random.default_rng(16)
        X = rng.standard_normal((batch, n))
        threaded = plan(n, real=True, threads=4)
        injector = FaultInjector().arm_memory(
            site=FaultSite.OUTPUT, index=1, magnitude=250.0
        )
        result = threaded.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert not result.uncorrectable
        assert np.allclose(result.output, np.fft.rfft(X, axis=-1))


class TestInteriorRealVerification:
    class _CorruptingProgram:
        """Wraps the cached RealStageProgram, corrupting the half-length
        sub-transform result a fixed number of times."""

        def __init__(self, inner, strikes=1, magnitude=80.0):
            self._inner = inner
            self.remaining = strikes
            self.magnitude = magnitude

        @property
        def half(self):
            return self._inner.half

        def pack(self, x):
            return self._inner.pack(x)

        def transform_half(self, z):
            out = self._inner.transform_half(z)
            if self.remaining:
                self.remaining -= 1
                out = out.copy()
                out[5] += self.magnitude
            return out

        def disentangle(self, spectrum):
            return self._inner.disentangle(spectrum)

        def execute(self, x):
            return self._inner.execute(x)

        def execute_inverse(self, spectrum):
            return self._inner.execute_inverse(spectrum)

    def test_fault_free_run_records_interior_check(self):
        ftp = FTPlan(2048, FTConfig(real=True))
        xr = np.random.default_rng(21).standard_normal(2048)
        result = ftp.execute(xr)
        sites = [v.site for v in result.report.verifications]
        assert "real-interior-ccv" in sites
        assert not result.detected
        assert np.allclose(result.output, np.fft.rfft(xr))

    def test_interior_fault_caught_before_disentangle(self):
        ftp = FTPlan(2048, FTConfig(real=True))
        ftp._real_program = self._CorruptingProgram(ftp._real_program, strikes=1)
        xr = np.random.default_rng(22).standard_normal(2048)
        result = ftp.execute(xr)
        interior = [
            v for v in result.report.verifications if v.site == "real-interior-ccv"
        ]
        assert any(v.detected for v in interior)
        assert not result.uncorrectable
        assert np.allclose(result.output, np.fft.rfft(xr))
        # the recovery happened mid-pipeline: a restart correction is logged
        assert any(
            c.site == "real-interior" for c in result.report.corrections
        )

    def test_persistent_interior_fault_reported_uncorrectable(self):
        ftp = FTPlan(2048, FTConfig(real=True))
        ftp._real_program = self._CorruptingProgram(ftp._real_program, strikes=99)
        xr = np.random.default_rng(23).standard_normal(2048)
        result = ftp.execute(xr)
        assert result.uncorrectable

    def test_input_memory_corruption_still_repaired_with_interior_check(self):
        # Regression: corrupted input trips the interior check (z aliases
        # xr), so the interior branch must route through the locating-pair
        # repair instead of restarting from the same corrupted data.
        ftp = FTPlan(1024, FTConfig.from_name("opt-online+mem+real"))
        xr = np.random.default_rng(25).standard_normal(1024)
        reference = np.fft.rfft(xr)

        inner = ftp._real_program
        corrupted = {"done": False}

        class CorruptPack:
            """Corrupts xr (through the packed view) after encoding, once."""

            half = inner.half

            def pack(self, x):
                z = inner.pack(x)
                if not corrupted["done"]:
                    corrupted["done"] = True
                    z[9] += 50.0  # writes through to xr: a memory fault
                return z

            def transform_half(self, z):
                return inner.transform_half(z)

            def disentangle(self, spectrum):
                return inner.disentangle(spectrum)

            def execute(self, x):
                return inner.execute(x)

        ftp._real_program = CorruptPack()
        result = ftp.execute(xr)
        assert not result.uncorrectable
        assert result.report.memory_correction_count >= 1
        assert np.allclose(result.output, reference)

    def test_odd_size_has_no_interior_pair_but_works(self):
        ftp = FTPlan(2187, FTConfig(real=True))  # odd: no half-length packing
        assert ftp.constants.c_h is None
        xr = np.random.default_rng(24).standard_normal(2187)
        result = ftp.execute(xr)
        assert np.allclose(result.output, np.fft.rfft(xr))


class TestConcurrentPlanning:
    def test_many_threads_same_key_get_one_plan(self):
        clear_plan_cache()
        results = []
        barrier = threading.Barrier(8)

        def fetch():
            barrier.wait()
            results.append(repro.plan(1536, "opt-offline"))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(p is results[0] for p in results)
        info = plan_cache_info()
        assert info.misses == 1

    def test_concurrent_distinct_sizes(self):
        clear_plan_cache()
        sizes = [512, 768, 1024, 1280, 1536, 2048]
        plans = {}
        lock = threading.Lock()

        def fetch(n):
            p = repro.plan(n, "opt-online+mem")
            with lock:
                plans.setdefault(n, []).append(p)

        threads = [
            threading.Thread(target=fetch, args=(n,)) for n in sizes for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for n in sizes:
            assert all(p is plans[n][0] for p in plans[n])
            x = np.random.default_rng(n).standard_normal(n) + 0j
            assert np.allclose(plans[n][0].execute(x).output, np.fft.fft(x))

    def test_concurrent_executions_share_one_threaded_plan(self):
        threaded = plan(1024, threads=2)
        X = _complex_batch(6, 1024, seed=31)
        ref = np.fft.fft(X, axis=-1)
        errors = []

        def work():
            try:
                out = threaded.execute_many(X)
                assert np.allclose(out.output, ref)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=work) for _ in range(6)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors

"""Tests for plan-time ABFT constants and the fault-free fast path."""

import numpy as np
import pytest

from repro.core import checksums
from repro.core.constants import SchemeConstants, weight_rms
from repro.core.ftplan import FTPlan, clear_plan_cache
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.plain import PlainFFT
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite

N = 256

ALL_SCHEME_NAMES = [
    "fftw",
    "offline",
    "opt-offline",
    "offline+mem",
    "opt-offline+mem",
    "online",
    "opt-online",
    "online+mem",
    "opt-online+mem",
]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def x(random_complex):
    return random_complex(N)


class TestSchemeConstantsBundle:
    def test_online_bundle_matches_per_run_construction(self):
        consts = SchemeConstants.for_online(
            N, optimized=True, memory_ft=True, modified_checksums=True
        )
        m, k = consts.m, consts.k
        np.testing.assert_array_equal(consts.c_m, checksums.input_checksum_weights(m))
        np.testing.assert_array_equal(consts.r_m, checksums.computational_weights(m))
        np.testing.assert_array_equal(consts.c_k, checksums.input_checksum_weights(k))
        # Section 4.1: rA doubles as the first locating vector.
        assert consts.w1_m is consts.c_m
        np.testing.assert_array_equal(
            consts.w2_m, consts.c_m * np.arange(1, m + 1, dtype=np.float64)
        )

    def test_naive_online_bundle_uses_naive_encoding_and_classic_pairs(self):
        consts = SchemeConstants.for_online(
            N, optimized=False, memory_ft=True, modified_checksums=False
        )
        np.testing.assert_array_equal(
            consts.c_m, checksums.input_checksum_weights_naive(consts.m)
        )
        w1, w2 = checksums.memory_weights_classic(consts.m)
        np.testing.assert_array_equal(consts.mem_m.w1, w1)
        np.testing.assert_array_equal(consts.mem_m.w2, w2)

    def test_offline_bundle_end_to_end_vectors(self):
        consts = SchemeConstants.for_offline(N, optimized=True, memory_ft=True)
        np.testing.assert_array_equal(consts.c_n, checksums.input_checksum_weights(N))
        assert consts.w1_n is consts.c_n

    def test_weight_rms_matches_threshold_expression(self):
        w = checksums.input_checksum_weights(N)
        expected = float(np.sqrt(np.mean(np.abs(w) ** 2)))
        assert weight_rms(w) == expected
        assert weight_rms(None) == 0.0

    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    def test_every_scheme_carries_a_bundle(self, name):
        plan = FTPlan(N, name)
        assert plan.scheme.constants is plan.constants
        assert plan.constants.n == N

    def test_plan_batch_vectors_come_from_the_bundle(self):
        plan = FTPlan(N, "opt-online+mem")
        assert plan._c is plan.constants.c_n
        assert plan._r is plan.constants.r_n
        assert plan._w1 is plan.constants.w1_n


class TestNoSetupWorkInsideExecute:
    """Regression: weight construction happens at plan time, never in execute."""

    BUILDERS = [
        "computational_weights",
        "input_checksum_weights",
        "input_checksum_weights_naive",
        "memory_weights_classic",
        "memory_weights_modified",
    ]

    def _count_builder_calls(self, monkeypatch, fn):
        import repro.core.constants as constants_mod
        import repro.core.ftplan as ftplan_mod
        import repro.core.offline as offline_mod
        import repro.core.online as online_mod
        import repro.core.optimized as optimized_mod

        calls = {"count": 0}
        # The schemes import the builders by name, so patch every module
        # namespace that holds a reference (not just the defining module).
        modules = (checksums, constants_mod, ftplan_mod, offline_mod, online_mod, optimized_mod)
        for module in modules:
            for name in self.BUILDERS:
                original = getattr(module, name, None)
                if original is None:
                    continue

                def counting(*args, _original=original, **kwargs):
                    calls["count"] += 1
                    return _original(*args, **kwargs)

                monkeypatch.setattr(module, name, counting)
        fn()
        return calls["count"]

    @pytest.mark.parametrize(
        "name", ["opt-online+mem", "online+mem", "opt-offline+mem", "offline"]
    )
    def test_fault_free_execute_builds_no_weight_vectors(self, monkeypatch, name, x):
        plan = FTPlan(N, name)  # setup happens here
        plan.execute(x)  # warm any lazy state
        count = self._count_builder_calls(monkeypatch, lambda: plan.execute(x))
        assert count == 0

    def test_batched_execute_builds_no_weight_vectors(self, monkeypatch, x):
        plan = FTPlan(N, "opt-online+mem")
        X = np.stack([x, 2 * x, x[::-1].copy()])
        plan.execute_many(X)
        count = self._count_builder_calls(monkeypatch, lambda: plan.execute_many(X))
        assert count == 0

    def test_live_injector_still_regenerates_under_dmr(self, monkeypatch, x):
        """With a live injector the rA vectors must be recomputed (DMR)."""

        plan = FTPlan(N, "opt-online+mem")
        injector = FaultInjector()  # live but unarmed
        count = self._count_builder_calls(monkeypatch, lambda: plan.execute(x, injector))
        assert count > 0


class TestFastPathEquivalence:
    """Fault-free results agree between the fast path and the legacy path."""

    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    def test_null_vs_unarmed_live_injector(self, name, x, spectra_close):
        plan = FTPlan(N, name)
        fast = plan.execute(x)  # NullInjector -> vectorized fast path
        legacy = plan.execute(x, FaultInjector())  # live -> group-wise path
        spectra_close(fast.output, legacy.output, rtol_scale=1e-12)
        assert not fast.report.detected
        assert not legacy.report.detected

    @pytest.mark.parametrize("name", ALL_SCHEME_NAMES)
    def test_fast_path_matches_numpy(self, name, x, spectra_close):
        plan = FTPlan(N, name)
        spectra_close(plan.execute(x).output, np.fft.fft(x))

    def test_fault_injection_still_detected_and_corrected(self, x, spectra_close):
        """The constants rework must not weaken actual fault tolerance."""

        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=3.0)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert injector.fired_count == 1
        assert result.report.recompute_count == 1
        spectra_close(result.output, np.fft.fft(x))

    def test_checksum_compute_fault_corrected_by_dmr(self, x, spectra_close):
        injector = FaultInjector().arm_computational(FaultSite.CHECKSUM_COMPUTE, magnitude=2.0)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert result.report.dmr_correction_count >= 1
        spectra_close(result.output, np.fft.fft(x))

    def test_directly_built_schemes_have_consistent_constants(self):
        for cls, kwargs in [
            (PlainFFT, {}),
            (OfflineABFT, {"optimized": True, "memory_ft": True}),
            (OnlineABFT, {"memory_ft": True}),
            (OptimizedOnlineABFT, {"memory_ft": True}),
        ]:
            scheme = cls(N, **kwargs)
            assert scheme.constants.n == N
            assert scheme.constants.m == scheme.plan.m

    def test_mismatched_constants_are_rebuilt(self):
        wrong = SchemeConstants.for_online(
            128, optimized=True, memory_ft=True, modified_checksums=True
        )
        scheme = OptimizedOnlineABFT(N, constants=wrong)
        assert scheme.constants.n == N

    def test_wrong_flavor_constants_are_rebuilt(self, x, spectra_close):
        """Bundles missing the memory-FT fields (or of the wrong modified/
        classic flavor) must be rebuilt, not accepted and crashed on."""

        no_mem = SchemeConstants.for_online(
            N, optimized=True, memory_ft=False, modified_checksums=True
        )
        scheme = OptimizedOnlineABFT(N, memory_ft=True, constants=no_mem)
        assert scheme.constants.w1_m is not None
        spectra_close(scheme.execute(x).output, np.fft.fft(x))

        opt_flavor = SchemeConstants.for_online(
            N, optimized=True, memory_ft=True, modified_checksums=True
        )
        naive = OnlineABFT(N, memory_ft=True, constants=opt_flavor)
        assert naive.constants.mem_m is not None
        spectra_close(naive.execute(x).output, np.fft.fft(x))

        from repro.core.base import OptimizationFlags

        classic_flags = OptimizationFlags(modified_checksums=False)
        modified_bundle = SchemeConstants.for_online(
            N, optimized=True, memory_ft=True, modified_checksums=True
        )
        scheme = OptimizedOnlineABFT(
            N, memory_ft=True, flags=classic_flags, constants=modified_bundle
        )
        # Rebuilt with the classic pair (all-ones first locating vector).
        np.testing.assert_array_equal(
            scheme.constants.w1_m, np.ones(scheme.plan.m, dtype=np.complex128)
        )

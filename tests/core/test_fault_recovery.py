"""Fault injection + recovery behaviour of the sequential schemes.

These are the repository's core integration tests: they reproduce, at unit
scale, the scenarios behind Table 1 (computational and memory faults during
a protected transform) and Table 5/6 (where faults land and whether they are
detected/corrected).
"""

import numpy as np
import pytest

from repro.core import create_scheme
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.plain import PlainFFT
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite, FaultSpec, FaultKind

N = 2**12


@pytest.fixture
def x(source):
    return source.uniform_complex(N)


@pytest.fixture
def reference(x):
    return np.fft.fft(x)


def relative_error(reference, output):
    return float(np.max(np.abs(output - reference)) / np.max(np.abs(reference)))


class TestPlainSchemeHasNoProtection:
    def test_computational_fault_corrupts_output(self, x, reference):
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=10.0)
        result = PlainFFT(N).execute(x, injector)
        assert injector.fired_count == 1
        assert not result.detected
        assert relative_error(reference, result.output) > 1e-6

    def test_memory_fault_corrupts_output(self, x, reference):
        injector = FaultInjector().arm_memory(FaultSite.INTERMEDIATE, magnitude=5.0)
        result = PlainFFT(N).execute(x, injector)
        assert relative_error(reference, result.output) > 1e-6


class TestComputationalFaults:
    @pytest.mark.parametrize(
        "scheme", ["offline", "opt-offline", "online", "opt-online", "online+mem", "opt-online+mem",
                    "offline+mem", "opt-offline+mem"]
    )
    @pytest.mark.parametrize("site", [FaultSite.STAGE1_COMPUTE, FaultSite.STAGE2_COMPUTE])
    def test_detected_and_corrected(self, scheme, site, x, reference):
        injector = FaultInjector().arm_computational(site, index=2, magnitude=7.5)
        result = create_scheme(scheme, N).execute(x, injector)
        assert injector.fired_count == 1
        assert result.detected
        assert relative_error(reference, result.output) < 1e-9
        assert result.report.recompute_count >= 1

    def test_online_recovers_via_single_sub_fft(self, x, reference):
        injector = FaultInjector().arm_computational(
            FaultSite.STAGE1_COMPUTE, index=5, magnitude=3.0
        )
        result = OptimizedOnlineABFT(N).execute(x, injector)
        # exactly one sub-FFT recomputation, no full restart
        assert result.report.recompute_count == 1
        assert relative_error(reference, result.output) < 1e-9

    def test_offline_recovers_via_full_restart(self, x, reference):
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=3.0)
        result = OfflineABFT(N, optimized=True).execute(x, injector)
        restarts = [c for c in result.report.corrections if c.kind == "restart"]
        assert len(restarts) == 1
        assert relative_error(reference, result.output) < 1e-9

    def test_twiddle_fault_corrected_by_dmr(self, x, reference):
        injector = FaultInjector().arm_computational(FaultSite.TWIDDLE_COMPUTE, magnitude=4.0)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert result.report.dmr_correction_count >= 1
        assert relative_error(reference, result.output) < 1e-9

    def test_checksum_vector_fault_corrected_by_dmr(self, x, reference):
        injector = FaultInjector().arm_computational(FaultSite.CHECKSUM_COMPUTE, magnitude=2.0)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert result.report.dmr_correction_count >= 1
        assert relative_error(reference, result.output) < 1e-9
        assert not result.report.has_uncorrectable

    def test_tiny_fault_below_threshold_is_harmless(self, x, reference):
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=1e-14)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        # too small to detect, but also too small to matter
        assert relative_error(reference, result.output) < 1e-9


class TestMemoryFaults:
    @pytest.mark.parametrize("scheme", ["online+mem", "opt-online+mem"])
    @pytest.mark.parametrize(
        "site", [FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]
    )
    def test_online_memory_ft_corrects(self, scheme, site, x, reference):
        injector = FaultInjector().arm_memory(site, magnitude=3.0)
        result = create_scheme(scheme, N).execute(x, injector)
        assert injector.fired_count == 1
        assert relative_error(reference, result.output) < 1e-9
        assert not result.report.has_uncorrectable

    def test_offline_memory_ft_corrects_input_fault(self, x, reference):
        injector = FaultInjector().arm_memory(FaultSite.INPUT, magnitude=4.0)
        result = OfflineABFT(N, optimized=True, memory_ft=True).execute(x, injector)
        assert result.report.memory_correction_count == 1
        assert relative_error(reference, result.output) < 1e-9

    def test_memory_correction_repairs_exact_element(self, x):
        injector = FaultInjector().arm_memory(FaultSite.INTERMEDIATE, element=123, magnitude=9.0)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        records = [c for c in result.report.corrections if c.kind == "memory-correct"]
        assert records, "expected a memory correction"

    def test_bitflip_memory_fault_corrected(self, x, reference):
        injector = FaultInjector().arm_bitflip(FaultSite.INTERMEDIATE, bit=55)
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert relative_error(reference, result.output) < 1e-9

    def test_comp_only_scheme_does_not_claim_memory_coverage(self, x, reference):
        """A memory fault on the intermediate data is out of scope for the
        computational-only scheme; it must not be silently 'corrected'."""

        injector = FaultInjector().arm_memory(FaultSite.INTERMEDIATE, magnitude=5.0)
        result = OptimizedOnlineABFT(N, memory_ft=False).execute(x, injector)
        # the corrupted intermediate propagates; the scheme cannot repair it
        assert relative_error(reference, result.output) > 1e-9


class TestMultipleFaults:
    def test_one_memory_plus_two_computational(self, x, reference):
        injector = (
            FaultInjector()
            .arm_memory(FaultSite.INTERMEDIATE, magnitude=4.0)
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=3, magnitude=8.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, index=7, magnitude=2.0)
        )
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert injector.fired_count == 3
        assert relative_error(reference, result.output) < 1e-9
        assert result.report.correction_count >= 3

    def test_faults_in_distinct_sub_ffts_all_corrected(self, x, reference):
        injector = (
            FaultInjector()
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=1, magnitude=1.0)
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=9, magnitude=2.0)
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=33, magnitude=3.0)
        )
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert result.report.recompute_count == 3
        assert relative_error(reference, result.output) < 1e-9

    def test_online_handles_faults_in_both_parts(self, x, reference):
        injector = (
            FaultInjector()
            .arm_computational(FaultSite.STAGE1_COMPUTE, index=0, magnitude=5.0)
            .arm_computational(FaultSite.STAGE2_COMPUTE, index=0, magnitude=5.0)
        )
        result = OnlineABFT(N, memory_ft=True).execute(x, injector)
        assert relative_error(reference, result.output) < 1e-9


class TestPersistentFaults:
    def test_persistent_computational_fault_reported_uncorrectable(self, x):
        """A sticky fault that re-fires on every recomputation must exhaust the
        retry budget and be reported, not loop forever or pass silently."""

        spec = FaultSpec(
            site=FaultSite.STAGE1_COMPUTE,
            index=4,
            element=10,
            kind=FaultKind.ADD_CONSTANT,
            magnitude=5.0,
            fire_once=False,
        )
        injector = FaultInjector(specs=[spec])
        result = OptimizedOnlineABFT(N).execute(x, injector)
        assert result.report.has_uncorrectable
        assert injector.fired_count >= 2


class TestDetectionOrdering:
    def test_online_detects_before_second_part(self, x):
        """The online scheme's detection record for a stage-1 fault must come
        from a stage-1 verification (timeliness: detected before the second
        part runs), not from the final check."""

        injector = FaultInjector().arm_computational(
            FaultSite.STAGE1_COMPUTE, index=2, magnitude=6.0
        )
        result = OptimizedOnlineABFT(N).execute(x, injector)
        detections = [v for v in result.report.verifications if v.detected]
        assert detections
        assert detections[0].site.startswith("stage1")

    def test_offline_detects_only_at_the_end(self, x):
        injector = FaultInjector().arm_computational(
            FaultSite.STAGE1_COMPUTE, index=2, magnitude=6.0
        )
        result = OfflineABFT(N, optimized=True).execute(x, injector)
        detections = [v for v in result.report.verifications if v.detected]
        assert detections
        assert detections[0].site == "offline-ccv"

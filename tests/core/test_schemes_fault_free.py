"""Fault-free behaviour of every sequential scheme.

Every scheme must (a) compute the correct transform, (b) raise no false
alarms on clean runs (the ~100% throughput requirement of Section 8), and
(c) expose a sensible report.
"""

import numpy as np
import pytest

from repro.core import OptimizationFlags, available_schemes, create_scheme
from repro.core.offline import OfflineABFT
from repro.core.online import OnlineABFT
from repro.core.optimized import OptimizedOnlineABFT
from repro.core.plain import PlainFFT

ALL_SCHEMES = list(available_schemes())
SIZES = [64, 144, 1024, 2**12]


class TestCorrectness:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("n", SIZES)
    def test_output_matches_numpy(self, scheme, n, random_complex, spectra_close):
        x = random_complex(n)
        result = create_scheme(scheme, n).execute(x)
        spectra_close(result.output, np.fft.fft(x))

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_no_false_positive_on_clean_run(self, scheme, random_complex):
        x = random_complex(2**12)
        result = create_scheme(scheme, 2**12).execute(x)
        assert not result.report.detected
        assert not result.report.corrections
        assert not result.report.has_uncorrectable

    @pytest.mark.parametrize("scheme", ["opt-online+mem", "opt-offline+mem", "online+mem"])
    def test_no_false_positive_with_uniform_input(self, scheme, source):
        """U(-1, 1) inputs (the paper's distribution) at a larger size."""

        n = 2**14
        x = source.uniform_complex(n)
        result = create_scheme(scheme, n).execute(x)
        assert not result.report.detected

    @pytest.mark.parametrize("scheme", ["opt-online+mem", "online+mem"])
    def test_no_false_positive_with_large_scale_input(self, scheme, source):
        """Thresholds must scale with the data (input scaled by 1e6)."""

        n = 2**12
        x = 1e6 * source.normal_complex(n)
        result = create_scheme(scheme, n).execute(x)
        assert not result.report.detected

    @pytest.mark.parametrize("scheme", ["opt-online+mem", "online+mem"])
    def test_no_false_positive_with_tiny_scale_input(self, scheme, source):
        n = 2**12
        x = 1e-6 * source.normal_complex(n)
        result = create_scheme(scheme, n).execute(x)
        assert not result.report.detected

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_input_array_is_not_mutated(self, scheme, random_complex):
        x = random_complex(256)
        original = x.copy()
        create_scheme(scheme, 256).execute(x)
        assert np.array_equal(x, original)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_result_metadata(self, scheme, random_complex):
        result = create_scheme(scheme, 64).execute(random_complex(64))
        assert result.scheme == result.report.scheme
        assert result.output.shape == (64,)

    def test_wrong_length_input_rejected(self, random_complex):
        with pytest.raises(ValueError):
            create_scheme("opt-online+mem", 64).execute(random_complex(65))


class TestSchemeConfiguration:
    def test_plain_exposes_factors(self):
        scheme = PlainFFT(4096)
        assert scheme.m * scheme.k == 4096

    def test_explicit_factors_respected(self, random_complex, spectra_close):
        scheme = OptimizedOnlineABFT(512, m=64, k=8)
        assert (scheme.m, scheme.k) == (64, 8)
        x = random_complex(512)
        spectra_close(scheme.execute(x).output, np.fft.fft(x))

    def test_online_group_size_one(self, random_complex, spectra_close):
        flags = OptimizationFlags(group_size=1)
        scheme = OnlineABFT(256, flags=flags)
        x = random_complex(256)
        spectra_close(scheme.execute(x).output, np.fft.fft(x))

    def test_optimized_all_flags_off(self, random_complex, spectra_close):
        scheme = OptimizedOnlineABFT(256, memory_ft=True, flags=OptimizationFlags.all_off())
        x = random_complex(256)
        result = scheme.execute(x)
        spectra_close(result.output, np.fft.fft(x))
        assert not result.report.detected

    @pytest.mark.parametrize(
        "flags",
        [
            OptimizationFlags(modified_checksums=False),
            OptimizationFlags(postpone_verification=False),
            OptimizationFlags(incremental_checksums=False),
            OptimizationFlags(contiguous_buffer=False),
            OptimizationFlags(group_size=7),
        ],
        ids=["no-modified", "no-postpone", "no-incremental", "no-contiguous", "odd-group"],
    )
    def test_each_optimization_toggle(self, flags, random_complex, spectra_close):
        scheme = OptimizedOnlineABFT(576, memory_ft=True, flags=flags)
        x = random_complex(576)
        result = scheme.execute(x)
        spectra_close(result.output, np.fft.fft(x))
        assert not result.report.detected

    def test_offline_naive_and_optimized_agree(self, random_complex):
        x = random_complex(1024)
        naive = OfflineABFT(1024, optimized=False).execute(x).output
        optimized = OfflineABFT(1024, optimized=True).execute(x).output
        assert np.allclose(naive, optimized, atol=1e-9)

    def test_scheme_names(self):
        assert OfflineABFT(64, optimized=False).name == "offline"
        assert OfflineABFT(64, optimized=True, memory_ft=True).name == "opt-offline+mem"
        assert OnlineABFT(64).name == "online"
        assert OnlineABFT(64, memory_ft=True).name == "online+mem"
        assert OptimizedOnlineABFT(64, memory_ft=False).name == "opt-online"
        assert OptimizedOnlineABFT(64).name == "opt-online+mem"

    def test_verification_counters_scale_with_sub_ffts(self, random_complex):
        n = 1024
        scheme = OptimizedOnlineABFT(n, memory_ft=True)
        result = scheme.execute(random_complex(n))
        # one verification per sub-FFT in each part: k + m
        assert result.report.counters["verifications"] == scheme.m + scheme.k

    def test_all_off_factory(self):
        flags = OptimizationFlags.all_off()
        assert not flags.modified_checksums
        assert not flags.postpone_verification
        assert not flags.incremental_checksums
        assert not flags.contiguous_buffer

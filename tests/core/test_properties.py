"""Property-based tests on the ABFT invariants (hypothesis).

The properties mirror the paper's correctness arguments:

* the checksum identity ``r . (A x) == (rA) . x`` holds for any input;
* a single corrupted element of a protected vector is always located and
  exactly repaired by the dual checksums, wherever it is and whatever the
  corruption magnitude (within floating-point resolution);
* any single computational or memory fault injected into a protected
  transform leaves the final output correct (the end-to-end guarantee of
  Section 3).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.checksums import (
    computational_weights,
    input_checksum_weights,
    locate_single_error,
    memory_weights_classic,
    memory_weights_modified,
)
from repro.core.optimized import OptimizedOnlineABFT
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.fftlib.mixed_radix import fft

SIZES = st.sampled_from([8, 16, 20, 32, 50, 64, 100, 128])


def complex_vector(n, seed, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


@settings(max_examples=40, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1))
def test_checksum_identity(n, seed):
    x = complex_vector(n, seed)
    lhs = np.dot(computational_weights(n), fft(x))
    rhs = np.dot(input_checksum_weights(n), x)
    scale = max(abs(lhs), abs(rhs), 1.0)
    assert abs(lhs - rhs) < 1e-10 * scale * n


@settings(max_examples=40, deadline=None)
@given(
    n=SIZES,
    seed=st.integers(0, 2**31 - 1),
    position=st.integers(0, 10_000),
    magnitude=st.floats(1e-3, 1e3),
    use_modified=st.booleans(),
)
def test_single_memory_error_always_located_and_repaired(
    n, seed, position, magnitude, use_modified
):
    x = complex_vector(n, seed)
    position = position % n
    w1, w2 = memory_weights_modified(n) if use_modified else memory_weights_classic(n)
    s1, s2 = np.dot(w1, x), np.dot(w2, x)
    corrupted = x.copy()
    corrupted[position] += magnitude * (1 - 0.5j)
    located = locate_single_error(corrupted, w1, w2, s1, s2)
    assert located is not None
    index, delta = located
    assert index == position
    corrupted[index] -= delta
    assert np.allclose(corrupted, x, atol=1e-7 * max(magnitude, 1.0))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    sub_fft=st.integers(0, 63),
    magnitude=st.floats(1e-4, 1e4),
    stage=st.sampled_from([FaultSite.STAGE1_COMPUTE, FaultSite.STAGE2_COMPUTE]),
)
def test_any_single_computational_fault_is_corrected(seed, sub_fft, magnitude, stage):
    n = 1024
    x = complex_vector(n, seed)
    reference = np.fft.fft(x)
    injector = FaultInjector().arm_computational(stage, index=sub_fft % 32, magnitude=magnitude)
    result = OptimizedOnlineABFT(n, memory_ft=False).execute(x, injector)
    err = np.max(np.abs(result.output - reference)) / np.max(np.abs(reference))
    assert err < 1e-8


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    element=st.integers(0, 10_000),
    magnitude=st.floats(0.5, 1e3),
    site=st.sampled_from([FaultSite.STAGE1_INPUT, FaultSite.INTERMEDIATE, FaultSite.OUTPUT]),
)
def test_any_single_memory_fault_is_corrected(seed, element, magnitude, site):
    n = 1024
    x = complex_vector(n, seed)
    reference = np.fft.fft(x)
    injector = FaultInjector().arm_memory(site, element=element, magnitude=magnitude)
    result = OptimizedOnlineABFT(n, memory_ft=True).execute(x, injector)
    err = np.max(np.abs(result.output - reference)) / np.max(np.abs(reference))
    assert err < 1e-8
    assert not result.report.has_uncorrectable


@settings(max_examples=20, deadline=None)
@given(n=SIZES, seed=st.integers(0, 2**31 - 1), scale=st.floats(1e-8, 1e8))
def test_no_false_positives_across_scales(n, seed, scale):
    x = complex_vector(max(n, 16), seed, scale=scale)
    result = OptimizedOnlineABFT(x.size, memory_ft=True).execute(x)
    assert not result.report.detected

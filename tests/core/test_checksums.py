"""Tests for the checksum algebra."""

import numpy as np
import pytest

from repro.core.checksums import (
    ChecksumPair,
    MemoryChecksumVectors,
    computational_weights,
    input_checksum_weights,
    input_checksum_weights_naive,
    locate_single_error,
    memory_weights_classic,
    memory_weights_modified,
    omega3,
    roots_of_unity_naive,
    roots_of_unity_split,
    weighted_sum,
)
from repro.fftlib.dft import dft_matrix


class TestOmega3AndWeights:
    def test_omega3_is_cube_root_of_unity(self):
        w = omega3()
        assert np.isclose(w ** 3, 1.0)
        assert not np.isclose(w, 1.0)

    def test_computational_weights_cycle(self):
        r = computational_weights(7)
        w = omega3()
        assert np.allclose(r, [w ** j for j in range(7)])

    def test_computational_weights_unit_magnitude(self):
        r = computational_weights(100)
        assert np.allclose(np.abs(r), 1.0)


class TestRootsOfUnity:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 100, 257])
    def test_split_matches_naive(self, n):
        assert np.allclose(roots_of_unity_split(n), roots_of_unity_naive(n), atol=1e-12)

    def test_naive_definition(self):
        roots = roots_of_unity_naive(8)
        assert np.allclose(roots, np.exp(-2j * np.pi * np.arange(8) / 8))


class TestInputChecksumWeights:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 128, 512])
    def test_closed_form_equals_r_times_dft_matrix(self, n):
        expected = computational_weights(n) @ dft_matrix(n)
        assert np.allclose(input_checksum_weights(n), expected, atol=1e-8)
        assert np.allclose(input_checksum_weights_naive(n), expected, atol=1e-8)

    @pytest.mark.parametrize("n", [3, 6, 9, 12, 48])
    def test_multiple_of_three_sizes(self, n):
        """3 | n makes the geometric series degenerate; the closed form must
        still match the exact matrix product (one huge element, zeros elsewhere)."""

        expected = computational_weights(n) @ dft_matrix(n)
        assert np.allclose(input_checksum_weights(n), expected, atol=1e-7)

    def test_checksum_identity_on_random_input(self, random_complex):
        """The defining ABFT identity: r . (A x) == (r A) . x."""

        n = 96
        x = random_complex(n)
        lhs = np.dot(computational_weights(n), np.fft.fft(x))
        rhs = np.dot(input_checksum_weights(n), x)
        assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-9)


class TestMemoryWeights:
    def test_classic_weights(self):
        w1, w2 = memory_weights_classic(5)
        assert np.allclose(w1, 1.0)
        assert np.allclose(w2, [1, 2, 3, 4, 5])

    def test_modified_weights_reuse_rA(self):
        n = 16
        w1, w2 = memory_weights_modified(n)
        assert np.allclose(w1, input_checksum_weights(n))
        assert np.allclose(w2, w1 * np.arange(1, n + 1))

    def test_modified_weights_fall_back_when_three_divides_n(self):
        w1, w2 = memory_weights_modified(12)
        classic = memory_weights_classic(12)
        assert np.allclose(w1, classic[0])
        assert np.allclose(w2, classic[1])

    def test_modified_weights_custom_base(self):
        base = np.arange(1, 5, dtype=complex)
        w1, w2 = memory_weights_modified(4, base=base)
        assert np.allclose(w1, base)
        assert np.allclose(w2, base * np.arange(1, 5))

    def test_modified_weights_wrong_base_shape(self):
        with pytest.raises(ValueError):
            memory_weights_modified(4, base=np.ones(3))


class TestWeightedSum:
    def test_vector(self):
        assert weighted_sum(np.array([1, 2.0]), np.array([3, 4.0])) == pytest.approx(11.0)

    def test_matrix_axis0_is_per_column(self, random_complex):
        data = random_complex(12).reshape(4, 3)
        w = np.arange(4, dtype=complex)
        assert np.allclose(weighted_sum(w, data, axis=0), w @ data)

    def test_matrix_axis1_is_per_row(self, random_complex):
        data = random_complex(12).reshape(4, 3)
        w = np.arange(3, dtype=complex)
        assert np.allclose(weighted_sum(w, data, axis=1), data @ w)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_sum(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            weighted_sum(np.ones(3), np.ones((4, 4)), axis=0)

    def test_bad_axis_raises(self):
        with pytest.raises(ValueError):
            weighted_sum(np.ones(3), np.ones((3, 3)), axis=2)

    def test_3d_data_rejected(self):
        with pytest.raises(ValueError):
            weighted_sum(np.ones(2), np.ones((2, 2, 2)))


class TestLocateSingleError:
    def _setup(self, n=32, modified=True):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        w1, w2 = (memory_weights_modified(n) if modified else memory_weights_classic(n))
        s1, s2 = np.dot(w1, x), np.dot(w2, x)
        return x, w1, w2, s1, s2

    @pytest.mark.parametrize("modified", [True, False])
    @pytest.mark.parametrize("position", [0, 7, 31])
    def test_locates_and_quantifies_corruption(self, modified, position):
        x, w1, w2, s1, s2 = self._setup(modified=modified)
        corrupted = x.copy()
        corrupted[position] += 3.5 - 1.25j
        located = locate_single_error(corrupted, w1, w2, s1, s2)
        assert located is not None
        index, delta = located
        assert index == position
        assert np.isclose(delta, 3.5 - 1.25j, atol=1e-8)

    def test_clean_vector_returns_none(self):
        x, w1, w2, s1, s2 = self._setup()
        assert locate_single_error(x, w1, w2, s1, s2) is None

    def test_double_corruption_is_rejected(self):
        x, w1, w2, s1, s2 = self._setup()
        corrupted = x.copy()
        corrupted[3] += 10.0
        corrupted[20] += 10.0
        located = locate_single_error(corrupted, w1, w2, s1, s2)
        # either None (cannot attribute) or a located index; it must not
        # silently claim a perfect single-element explanation at a wrong spot
        if located is not None:
            index, delta = located
            repaired = corrupted.copy()
            repaired[index] -= delta
            assert not np.allclose(repaired, x)


class TestMemoryChecksumVectors:
    def test_generate_and_verify_matrix_columns(self, random_complex):
        data = random_complex(8 * 5).reshape(8, 5)
        mem = MemoryChecksumVectors(8, modified=True)
        pair = mem.generate(data, axis=0)
        assert pair.s1.shape == (5,)
        assert np.allclose(mem.residuals(data, pair, axis=0), 0.0, atol=1e-12)

    def test_correct_repairs_in_place(self, random_complex):
        vec = random_complex(16)
        mem = MemoryChecksumVectors(16, modified=True)
        pair = mem.generate(vec)
        corrupted = vec.copy()
        corrupted[9] = 123.0
        located = mem.correct(corrupted, pair.s1, pair.s2)
        assert located is not None and located[0] == 9
        assert np.allclose(corrupted, vec, atol=1e-8)

    def test_classic_mode(self, random_complex):
        vec = random_complex(10)
        mem = MemoryChecksumVectors(10, modified=False)
        pair = mem.generate(vec)
        corrupted = vec.copy()
        corrupted[4] += 2.0
        assert mem.correct(corrupted, pair.s1, pair.s2)[0] == 4

    def test_checksum_pair_copy_and_select(self):
        pair = ChecksumPair(np.arange(4, dtype=complex), np.arange(4, dtype=complex) * 2)
        clone = pair.copy()
        clone.s1[0] = 99
        assert pair.s1[0] == 0
        sel = pair.select([1, 2])
        assert np.allclose(sel.s1, [1, 2])

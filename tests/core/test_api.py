"""Tests for the public API facade and scheme registry."""

import numpy as np
import pytest

from repro.core.api import FaultTolerantFFT, available_schemes, create_scheme, ft_fft
from repro.core.base import OptimizationFlags
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite


class TestRegistry:
    def test_expected_schemes_present(self):
        names = set(available_schemes())
        assert {"fftw", "offline", "opt-offline", "online", "opt-online",
                "offline+mem", "opt-offline+mem", "online+mem", "opt-online+mem"} <= names

    def test_create_scheme_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            create_scheme("nope", 64)

    @pytest.mark.parametrize("name", ["fftw", "opt-online+mem", "opt-offline"])
    def test_created_schemes_execute(self, name, random_complex, spectra_close):
        scheme = create_scheme(name, 128)
        x = random_complex(128)
        spectra_close(scheme.execute(x).output, np.fft.fft(x))

    def test_kwargs_forwarded(self):
        scheme = create_scheme("opt-online+mem", 512, m=64, k=8)
        assert (scheme.m, scheme.k) == (64, 8)


class TestFtFft:
    def test_default_scheme(self, random_complex, spectra_close):
        x = random_complex(256)
        result = ft_fft(x)
        spectra_close(result.output, np.fft.fft(x))
        assert result.scheme == "opt-online+mem"

    def test_explicit_scheme_and_injector(self, random_complex, spectra_close):
        x = random_complex(256)
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=5.0)
        result = ft_fft(x, scheme="opt-online", injector=injector)
        spectra_close(result.output, np.fft.fft(x))
        assert result.detected


class TestFaultTolerantFFT:
    def test_forward(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(1024)
        x = random_complex(1024)
        spectra_close(ft.forward(x).output, np.fft.fft(x))

    def test_inverse(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(1024)
        x = random_complex(1024)
        spectra_close(ft.inverse(np.fft.fft(x)).output, x, rtol_scale=1e-8)

    def test_forward_inverse_round_trip(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(400)
        x = random_complex(400)
        spectra_close(ft.inverse(ft.forward(x).output).output, x, rtol_scale=1e-8)

    def test_callable_shortcut(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(64, scheme="fftw")
        x = random_complex(64)
        spectra_close(ft(x).output, np.fft.fft(x))

    def test_reusable_across_many_inputs(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(128)
        for _ in range(4):
            x = random_complex(128)
            spectra_close(ft.forward(x).output, np.fft.fft(x))

    def test_protection_applies_during_inverse(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(512)
        x = random_complex(512)
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=6.0)
        result = ft.inverse(np.fft.fft(x), injector)
        assert result.report.detected
        spectra_close(result.output, x, rtol_scale=1e-8)

    def test_custom_thresholds_and_flags(self, random_complex, spectra_close):
        ft = FaultTolerantFFT(
            256,
            scheme="opt-online+mem",
            thresholds=ThresholdPolicy(),
            flags=OptimizationFlags(group_size=8),
        )
        x = random_complex(256)
        spectra_close(ft.forward(x).output, np.fft.fft(x))

    def test_explicit_factors(self):
        ft = FaultTolerantFFT(512, m=64, k=8)
        assert ft.scheme.m == 64 and ft.scheme.k == 8

    def test_describe(self):
        assert "opt-online+mem" in FaultTolerantFFT(64).describe()

"""Tests for in-place protected plans: ``FTConfig.inplace`` and the ``out=`` paths.

The load-bearing property: ABFT recovery still works *after the input
buffer has been overwritten* - the locating pair re-encoded onto the output
side (the checksum-carried surrogate) locates and repairs corruption of the
destroyed buffer, the paper's Fig. 4 backup discipline without the backups.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.config import FTConfig
from repro.core.constants import SchemeConstants
from repro.core.ftplan import FTPlan
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind, FaultSite, FaultSpec

N = 4096


@pytest.fixture
def signal(rng):
    return rng.standard_normal(N) + 1j * rng.standard_normal(N)


def _spec(site, element=137, magnitude=50.0):
    return FaultSpec(
        site=site, element=element, kind=FaultKind.ADD_CONSTANT, magnitude=magnitude
    )


class TestConfigRoundTrip:
    @pytest.mark.parametrize(
        "name",
        [
            "opt-online+mem+ip",
            "opt-offline+mem+ip",
            "online+ip",
            "fftw+ip",
            "opt-online+mem+real+ip",
            "opt-online+mem+real+ip+t4",
            "opt-online+mem+ip+t2",
        ],
    )
    def test_ip_suffix_round_trips(self, name):
        config = FTConfig.from_name(name)
        assert config.inplace
        assert config.to_name() == name

    def test_suffix_order_is_real_then_ip_then_threads(self):
        config = FTConfig(real=True, inplace=True, threads=8)
        assert config.to_name() == "opt-online+mem+real+ip+t8"
        assert FTConfig.from_name(config.to_name()) == config

    def test_explicit_override_composes_with_plain_name(self):
        config = FTConfig.from_name("opt-online+mem", inplace=True)
        assert config.inplace and config.to_name() == "opt-online+mem+ip"

    def test_plan_cache_keys_are_distinct(self):
        a = repro.plan(256, "opt-online+mem+ip")
        b = repro.plan(256, "opt-online+mem")
        assert a is not b
        assert a is repro.plan(256, "opt-online+mem+ip")

    def test_describe_mentions_inplace(self):
        assert "inplace=True" in FTConfig(inplace=True).describe()
        assert ", inplace" in FTPlan(64, FTConfig(inplace=True)).describe()


class TestInPlaceConstants:
    def test_carried_pair_matches_output_side_identity(self, rng):
        """``(F w) . x`` must equal ``w . fft(x)`` - the surrogate identity."""

        config = FTConfig.from_name("opt-online+mem+ip")
        consts = SchemeConstants.for_config(N, config)
        assert consts.inplace and consts.fw1_n is not None
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        X = np.fft.fft(x)
        carried = consts.fw1_n @ x
        direct = consts.w1_n @ X
        assert abs(carried - direct) / max(abs(direct), 1e-300) < 1e-9

    def test_real_carried_pair_folds_onto_packed_layout(self, rng):
        config = FTConfig.from_name("opt-online+mem+real+ip")
        consts = SchemeConstants.for_config(N, config)
        assert consts.fp1_h is not None
        x = rng.standard_normal(N)
        packed = np.fft.rfft(x)
        carried = consts.fp1_h @ x
        direct = consts.p1_h @ packed
        assert abs(carried - direct) / max(abs(direct), 1e-300) < 1e-9

    def test_no_memory_ft_means_no_surrogate(self):
        consts = SchemeConstants.for_config(N, FTConfig.from_name("opt-online+ip"))
        assert consts.inplace and consts.fw1_n is None


class TestComplexOverwrite:
    def test_fault_free_matches_out_of_place(self, signal, spectra_close):
        plan = repro.plan(N, "opt-online+mem+ip")
        reference = plan.execute(signal).output  # scheme path, input preserved
        buf = signal.copy()
        result = plan.execute(buf, out=buf)
        assert result.output is buf
        assert not result.report.detected
        spectra_close(buf, np.fft.fft(signal))
        assert np.allclose(buf, reference, atol=1e-9 * np.max(np.abs(reference)))

    def test_output_fault_repaired_after_input_destroyed(self, signal):
        plan = repro.plan(N, "opt-online+mem+ip")
        reference = np.fft.fft(signal)
        injector = FaultInjector(specs=[_spec(FaultSite.OUTPUT)])
        buf = signal.copy()
        result = plan.execute(buf, injector, out=buf)
        assert injector.fired_count == 1
        assert result.report.detected and result.report.corrected
        assert not result.report.has_uncorrectable
        err = np.max(np.abs(buf - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_input_fault_repaired_before_overwrite(self, signal):
        plan = repro.plan(N, "opt-online+mem+ip")
        reference = np.fft.fft(signal)
        injector = FaultInjector(specs=[_spec(FaultSite.INPUT, element=55)])
        buf = signal.copy()
        result = plan.execute(buf, injector, out=buf)
        assert result.report.detected
        err = np.max(np.abs(buf - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_without_memory_ft_detected_but_uncorrectable(self, signal):
        plan = repro.plan(N, "opt-online+ip")
        injector = FaultInjector(specs=[_spec(FaultSite.OUTPUT, magnitude=100.0)])
        buf = signal.copy()
        result = plan.execute(buf, injector, out=buf)
        assert result.report.detected
        assert result.report.has_uncorrectable  # honest: nothing to recompute from

    def test_separate_out_buffer_preserves_input(self, signal, spectra_close):
        plan = repro.plan(N, "opt-online+mem+ip")
        snapshot = signal.copy()
        out = np.empty(N, dtype=np.complex128)
        plan.execute(signal, out=out)
        assert np.array_equal(signal, snapshot)
        spectra_close(out, np.fft.fft(signal))

    def test_unsupported_size_keeps_overwrite_semantics(self, rng, spectra_close):
        n = 134  # half = 67 -> Bluestein, no Stockham lowering
        plan = repro.plan(n, "opt-online+mem+ip")
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        buf = x.copy()
        result = plan.execute(buf, out=buf)
        assert result.output is buf
        spectra_close(buf, np.fft.fft(x))

    def test_complex64_dtype_rejected_on_overwrite_path(self, signal):
        plan = repro.plan(N, "opt-online+mem+ip", dtype="complex64")
        with pytest.raises(ValueError):
            plan.execute(signal.copy(), out=signal.copy())

    def test_out_on_plan_without_ip_config_still_recovers(self, signal):
        """A memory_ft plan never configured with +ip builds the carried
        surrogate lazily when out= is first used - recovery must not
        silently degrade just because the config lacked the flag."""

        plan = repro.plan(N, "opt-online+mem")
        reference = np.fft.fft(signal)
        injector = FaultInjector(specs=[_spec(FaultSite.OUTPUT)])
        buf = signal.copy()
        result = plan.execute(buf, injector, out=buf)
        assert result.report.detected and not result.report.has_uncorrectable
        err = np.max(np.abs(buf - reference)) / np.max(np.abs(reference))
        assert err < 1e-9
        assert plan.constants.fw1_n is not None  # upgraded once, reused


class TestRealOverwrite:
    def test_fault_free_destroys_input(self, rng, spectra_close):
        plan = repro.plan(N, "opt-online+mem+real+ip")
        x = rng.standard_normal(N)
        reference = np.fft.rfft(x)
        buf = x.copy()
        out = np.empty(N // 2 + 1, dtype=np.complex128)
        result = plan.execute(buf, out=out)
        assert result.output is out
        spectra_close(out, reference)
        assert not np.allclose(buf, x)  # the paper's in-place discipline

    def test_packed_output_fault_repaired_from_surrogate(self, rng):
        plan = repro.plan(N, "opt-online+mem+real+ip")
        x = rng.standard_normal(N)
        reference = np.fft.rfft(x)
        injector = FaultInjector(specs=[_spec(FaultSite.OUTPUT, element=99, magnitude=40.0)])
        out = np.empty(N // 2 + 1, dtype=np.complex128)
        result = plan.execute(x.copy(), injector, out=out)
        assert result.report.detected and not result.report.has_uncorrectable
        err = np.max(np.abs(out - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_input_fault_repaired_before_overwrite(self, rng):
        plan = repro.plan(N, "opt-online+mem+real+ip")
        x = rng.standard_normal(N)
        reference = np.fft.rfft(x)
        injector = FaultInjector(specs=[_spec(FaultSite.INPUT, element=7, magnitude=30.0)])
        out = np.empty(N // 2 + 1, dtype=np.complex128)
        result = plan.execute(x.copy(), injector, out=out)
        assert result.report.detected
        err = np.max(np.abs(out - reference)) / np.max(np.abs(reference))
        assert err < 1e-9


class TestBatchedOverwrite:
    def test_fault_free_in_buffer(self, rng, spectra_close):
        plan = repro.plan(N, "opt-online+mem+ip")
        X = rng.standard_normal((6, N)) + 1j * rng.standard_normal((6, N))
        reference = np.fft.fft(X, axis=-1)
        B = X.copy()
        batch = plan.execute_many(B, out=B)
        assert batch.output is B
        assert not batch.report.detected
        spectra_close(B, reference)

    def test_output_fault_row_repaired(self, rng):
        plan = repro.plan(N, "opt-online+mem+ip")
        X = rng.standard_normal((6, N)) + 1j * rng.standard_normal((6, N))
        reference = np.fft.fft(X, axis=-1)
        injector = FaultInjector(specs=[_spec(FaultSite.OUTPUT, element=7, magnitude=80.0)])
        B = X.copy()
        batch = plan.execute_many(B, injector=injector, out=B)
        assert len(batch.fallback_rows) == 1
        assert not batch.uncorrectable
        err = np.max(np.abs(B - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_input_fault_row_repaired_before_overwrite(self, rng):
        plan = repro.plan(N, "opt-online+mem+ip")
        X = rng.standard_normal((6, N)) + 1j * rng.standard_normal((6, N))
        reference = np.fft.fft(X, axis=-1)
        injector = FaultInjector(specs=[_spec(FaultSite.INPUT, element=123, magnitude=60.0)])
        B = X.copy()
        batch = plan.execute_many(B, injector=injector, out=B)
        assert not batch.uncorrectable
        err = np.max(np.abs(B - reference)) / np.max(np.abs(reference))
        assert err < 1e-9

    def test_threaded_chunk_parallel_overwrite(self, rng, spectra_close):
        plan = repro.plan(N, "opt-online+mem+ip+t2")
        X = rng.standard_normal((8, N)) + 1j * rng.standard_normal((8, N))
        reference = np.fft.fft(X, axis=-1)
        B = X.copy()
        batch = plan.execute_many(B, out=B)
        assert batch.output is B
        spectra_close(B, reference)

    def test_axis0_layout_scattered_back(self, rng, spectra_close):
        plan = repro.plan(N, "opt-online+mem+ip")
        X = rng.standard_normal((N, 4)) + 1j * rng.standard_normal((N, 4))
        reference = np.fft.fft(X, axis=0)
        B = X.copy()
        batch = plan.execute_many(B, axis=0, out=B)
        assert batch.output is B
        spectra_close(B, reference)

    def test_real_batched_separate_out(self, rng, spectra_close):
        plan = repro.plan(N, "opt-online+mem+real+ip")
        X = rng.standard_normal((4, N))
        out = np.empty((4, N // 2 + 1), dtype=np.complex128)
        batch = plan.execute_many(X, out=out)
        assert batch.output is out
        spectra_close(out, np.fft.rfft(X, axis=-1))

    def test_out_shape_mismatch_rejected(self, rng):
        plan = repro.plan(N, "opt-online+mem+ip")
        X = rng.standard_normal((4, N)) + 1j * rng.standard_normal((4, N))
        with pytest.raises(ValueError):
            plan.execute_many(X, out=np.empty((4, N // 2), dtype=np.complex128))

    def test_real_out_shape_mismatch_rejected_before_work(self, rng):
        plan = repro.plan(N, "opt-online+mem+real+ip")
        X = rng.standard_normal((4, N))
        with pytest.raises(ValueError):
            plan.execute_many(X, out=np.empty((4, N), dtype=np.complex128))


class TestInverseAndUnprotected:
    def test_plain_scheme_overwrite(self, rng, spectra_close):
        plan = repro.plan(N, "fftw+ip")
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        buf = x.copy()
        result = plan.execute(buf, out=buf)
        assert result.output is buf
        spectra_close(buf, np.fft.fft(x))

    def test_protected_inverse_still_out_of_place(self, rng, spectra_close):
        # inverse() has no out= path; the +ip config must not break it
        plan = repro.plan(N, "opt-online+mem+ip")
        x = rng.standard_normal(N) + 1j * rng.standard_normal(N)
        spectrum = np.fft.fft(x)
        result = plan.inverse(spectrum)
        spectra_close(result.output, x, rtol_scale=1e-8)

"""Tests for the plan-centric API: FTConfig, repro.plan, FTPlan, batching."""

import threading

import numpy as np
import pytest

import repro
from repro.core.config import FTConfig, legacy_scheme_names
from repro.core.ftplan import (
    FTPlan,
    clear_plan_cache,
    plan,
    plan_cache_info,
    set_plan_cache_limit,
)
from repro.core.base import OptimizationFlags
from repro.core.thresholds import ThresholdPolicy
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from plan-cache state (and restore the limit)."""

    clear_plan_cache()
    set_plan_cache_limit(32)
    yield
    clear_plan_cache()
    set_plan_cache_limit(32)


class TestFTConfig:
    def test_default_is_the_papers_scheme(self):
        config = FTConfig()
        assert config.to_name() == "opt-online+mem"

    @pytest.mark.parametrize("name", list(legacy_scheme_names()))
    def test_from_name_round_trips_every_legacy_name(self, name):
        assert FTConfig.from_name(name).to_name() == name

    def test_from_name_unknown(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            FTConfig.from_name("nope")

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="unknown scheme kind"):
            FTConfig(kind="quantum")

    def test_plain_has_no_variants(self):
        with pytest.raises(ValueError, match="plain"):
            FTConfig(kind="plain", optimized=True, memory_ft=False)
        with pytest.raises(ValueError, match="plain"):
            FTConfig(kind="plain", optimized=False, memory_ft=True)

    def test_invalid_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            FTConfig(dtype="float64")

    def test_dtype_normalised(self):
        assert FTConfig(dtype=np.complex64).dtype == "complex64"

    def test_invalid_factor(self):
        with pytest.raises(ValueError, match="positive integer"):
            FTConfig(m=-4)

    def test_hashable_with_policy_and_flags(self):
        config = FTConfig(thresholds=ThresholdPolicy(), flags=OptimizationFlags(group_size=8))
        assert hash(config) == hash(config.replace())

    def test_build_respects_factors_and_backend(self):
        scheme = FTConfig.from_name("opt-online+mem", m=64, k=8, backend="numpy").build(512)
        assert (scheme.m, scheme.k) == (64, 8)
        assert scheme.plan.backend == "numpy"

    def test_build_every_kind_executes(self, random_complex, spectra_close):
        x = random_complex(128)
        for name in legacy_scheme_names():
            scheme = FTConfig.from_name(name).build(128)
            spectra_close(scheme.execute(x).output, np.fft.fft(x))


class TestPlanCache:
    def test_repeated_calls_return_same_object(self):
        p = plan(256)
        assert plan(256) is p
        assert plan(256, FTConfig()) is p

    def test_distinct_configs_get_distinct_plans(self):
        assert plan(256) is not plan(256, "opt-offline")
        assert plan(256) is not plan(256, backend="numpy")
        assert plan(256) is not plan(512)

    def test_hit_miss_accounting(self):
        plan(128)
        plan(128)
        plan(64)
        info = plan_cache_info()
        assert info.hits == 1 and info.misses == 2 and info.size == 2

    def test_lru_eviction(self):
        set_plan_cache_limit(2)
        first = plan(64)
        plan(128)
        plan(64)          # refresh 64 -> 128 is now least recently used
        plan(256)          # evicts 128
        assert plan(64) is first
        info = plan_cache_info()
        assert info.size == 2
        old_misses = plan_cache_info().misses
        plan(128)          # was evicted: must be rebuilt
        assert plan_cache_info().misses == old_misses + 1

    def test_clear(self):
        p = plan(64)
        clear_plan_cache()
        assert plan(64) is not p

    def test_string_and_override_configs(self):
        a = plan(128, "opt-online", backend="numpy")
        b = plan(128, FTConfig.from_name("opt-online", backend="numpy"))
        assert a is b

    def test_default_backend_resolved_into_cache_key(self):
        assert plan(128) is plan(128, backend="fftlib")
        repro.set_default_backend("numpy")
        try:
            p = plan(128)
            assert p.backend == "numpy"
            assert p is plan(128, backend="numpy")
            assert p is not plan(128, backend="fftlib")
        finally:
            repro.set_default_backend("fftlib")

    def test_bad_config_type(self):
        with pytest.raises(TypeError, match="config"):
            plan(64, 3.14)

    def test_thread_safety_returns_one_instance(self):
        results = []

        def worker():
            results.append(plan(1024))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(p) for p in results}) == 1


class TestFTPlanExecution:
    def test_execute_matches_numpy(self, random_complex, spectra_close):
        p = plan(400)
        x = random_complex(400)
        spectra_close(p.execute(x).output, np.fft.fft(x))

    def test_inverse_round_trip(self, random_complex, spectra_close):
        p = plan(1024)
        x = random_complex(1024)
        spectra_close(p.inverse(p.execute(x).output).output, x, rtol_scale=1e-8)

    def test_inverse_round_trip_under_fault_injection(self, random_complex, spectra_close):
        p = plan(512)
        x = random_complex(512)
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, magnitude=9.0)
        result = p.inverse(np.fft.fft(x), injector)
        assert result.report.detected
        assert not result.report.has_uncorrectable
        spectra_close(result.output, x, rtol_scale=1e-8)

    def test_dtype_cast(self, random_complex):
        p = plan(128, dtype="complex64")
        x = random_complex(128)
        assert p.execute(x).output.dtype == np.complex64
        assert p.execute_many(np.stack([x, x])).output.dtype == np.complex64

    def test_uncached_direct_construction(self, random_complex, spectra_close):
        p = FTPlan(128, "opt-offline")
        x = random_complex(128)
        spectra_close(p.execute(x).output, np.fft.fft(x))
        assert plan_cache_info().size == 0


class TestExecuteMany:
    def test_batch_matches_per_row_fft(self, rng, spectra_close):
        p = plan(4096)
        X = rng.standard_normal((64, 4096)) + 1j * rng.standard_normal((64, 4096))
        batch = p.execute_many(X)
        spectra_close(batch.output, np.fft.fft(X, axis=-1))
        # clean input: everything verified in the vectorized path, no fallback
        assert batch.fallback_rows == ()
        assert not batch.detected
        assert batch.report.counters["verifications"] == 64

    def test_batch_matches_looped_execute(self, rng, spectra_close):
        p = plan(256)
        X = rng.standard_normal((8, 256)) + 1j * rng.standard_normal((8, 256))
        batch = p.execute_many(X)
        looped = np.stack([p.execute(row).output for row in X])
        spectra_close(batch.output, looped)

    def test_axis_argument(self, rng, spectra_close):
        p = plan(128)
        X = rng.standard_normal((128, 5)) + 1j * rng.standard_normal((128, 5))
        batch = p.execute_many(X, axis=0)
        assert batch.output.shape == (128, 5)
        spectra_close(batch.output, np.fft.fft(X, axis=0))

    def test_single_vector_input(self, rng, spectra_close):
        p = plan(64)
        x = rng.standard_normal(64) + 0j
        batch = p.execute_many(x)
        spectra_close(batch.output, np.fft.fft(x))

    def test_wrong_length_rejected(self, rng):
        p = plan(64)
        with pytest.raises(ValueError, match="expected 64"):
            p.execute_many(rng.standard_normal((4, 65)) + 0j)

    def test_does_not_mutate_caller_array(self, rng):
        p = plan(128)
        X = rng.standard_normal((4, 128)) + 0j
        before = X.copy()
        injector = FaultInjector().arm_bitflip(FaultSite.INPUT, bit=60)
        p.execute_many(X, injector=injector)
        np.testing.assert_array_equal(X, before)

    def test_retry_budget_matches_wrapped_scheme(self):
        p = plan(64)
        assert p._max_retries == p.scheme.flags.max_retries
        offline = plan(64, "opt-offline+mem")
        assert offline._max_retries == offline.scheme.max_retries

    def test_input_fault_repaired_when_n_divisible_by_3(self, rng, spectra_close):
        # 3 | n makes the closed-form rA vector nearly degenerate, so the
        # end-to-end computational residual alone is blind to input faults;
        # the vectorized memory verification (classic locating pair via the
        # memory_weights_modified guard) must catch and repair them.
        p = plan(384)
        X = rng.standard_normal((8, 384)) + 1j * rng.standard_normal((8, 384))
        reference = np.fft.fft(X, axis=-1)
        injector = FaultInjector().arm_bitflip(FaultSite.INPUT, bit=60)
        batch = p.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert batch.detected and batch.corrected
        assert not batch.uncorrectable
        spectra_close(batch.output, reference, rtol_scale=1e-8)

    def test_input_memory_fault_detected_and_repaired(self, rng, spectra_close):
        p = plan(1024)
        X = rng.standard_normal((16, 1024)) + 1j * rng.standard_normal((16, 1024))
        reference = np.fft.fft(X, axis=-1)
        injector = FaultInjector().arm_bitflip(FaultSite.INPUT, bit=61)
        batch = p.execute_many(X, injector=injector)
        assert injector.fired_count == 1
        assert batch.detected and batch.corrected
        assert len(batch.fallback_rows) == 1
        assert not batch.uncorrectable
        spectra_close(batch.output, reference, rtol_scale=1e-8)

    def test_unprotected_plain_batch(self, rng, spectra_close):
        p = plan(256, "fftw")
        X = rng.standard_normal((6, 256)) + 0j
        batch = p.execute_many(X)
        spectra_close(batch.output, np.fft.fft(X, axis=-1))
        assert "verifications" not in batch.report.counters

    def test_numpy_backend_batch(self, rng, spectra_close):
        p = plan(512, backend="numpy")
        X = rng.standard_normal((8, 512)) + 0j
        spectra_close(p.execute_many(X).output, np.fft.fft(X, axis=-1))


class TestDeprecatedShims:
    def test_create_scheme_warns_but_works(self, random_complex, spectra_close):
        with pytest.deprecated_call():
            scheme = repro.create_scheme("opt-online+mem", 128)
        x = random_complex(128)
        spectra_close(scheme.execute(x).output, np.fft.fft(x))

    def test_ft_fft_warns_and_uses_cache(self, random_complex):
        x = random_complex(256)
        with pytest.deprecated_call():
            repro.ft_fft(x)
        misses = plan_cache_info().misses
        with pytest.deprecated_call():
            repro.ft_fft(x)
        assert plan_cache_info().misses == misses  # second call hit the cache

    def test_fault_tolerant_fft_warns_and_wraps_plan(self, random_complex, spectra_close):
        with pytest.deprecated_call():
            ft = repro.FaultTolerantFFT(256)
        # the facade wraps an FTPlan but owns a private (uncached) one, so
        # legacy attribute mutation cannot contaminate the shared cache
        assert isinstance(ft.plan, FTPlan)
        assert ft.plan is not plan(256)
        assert ft.scheme is not plan(256).scheme
        x = random_complex(256)
        spectra_close(ft.forward(x).output, np.fft.fft(x))

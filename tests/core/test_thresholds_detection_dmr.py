"""Tests for thresholds (Section 8), the FT report, and the DMR helpers."""

import numpy as np
import pytest

from repro.core.checksums import computational_weights, input_checksum_weights, weighted_sum
from repro.core.detection import FTReport
from repro.core.dmr import dmr_elementwise, dmr_scalar
from repro.core.thresholds import (
    MANTISSA_BITS_DOUBLE,
    RoundoffModel,
    ThresholdMode,
    ThresholdPolicy,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSite
from repro.fftlib.two_layer import TwoLayerPlan


class TestRoundoffModel:
    def test_sigma_eps_magnitude(self):
        model = RoundoffModel()
        assert 1e-17 < model.sigma_eps < 1e-15

    def test_noise_to_signal_grows_with_size(self):
        model = RoundoffModel()
        assert model.noise_to_signal_ratio(2**20) > model.noise_to_signal_ratio(2**10) > 0
        assert model.noise_to_signal_ratio(1) == 0.0

    def test_fft_output_sigma(self):
        model = RoundoffModel()
        assert model.fft_output_sigma(64, 2.0) == pytest.approx(16.0)

    def test_roundoff_sigma_scaling(self):
        model = RoundoffModel()
        small = model.fft_roundoff_sigma(64, 1.0)
        large = model.fft_roundoff_sigma(4096, 1.0)
        assert large > small > 0

    def test_checksum_sigma_is_n_times_element_sigma(self):
        model = RoundoffModel()
        n = 256
        assert model.checksum_roundoff_sigma(n, 1.0) == pytest.approx(
            n * model.fft_roundoff_sigma(n, 1.0)
        )

    def test_second_stage_uses_amplified_input(self):
        model = RoundoffModel()
        assert model.second_stage_checksum_sigma(64, 64, 1.0) > model.checksum_roundoff_sigma(
            64, 1.0
        )

    def test_throughput_monotone_in_eta(self):
        model = RoundoffModel()
        low = RoundoffModel.throughput(1e-16, 1024, 1e-15)
        high = RoundoffModel.throughput(1e-12, 1024, 1e-15)
        assert 0.33 <= low <= high <= 1.0

    def test_throughput_three_sigma_rule(self):
        # eta = 3 sqrt(n) sigma -> ~0.997 acceptance per the paper
        n, sigma = 4096, 1e-14
        eta = 3 * np.sqrt(n) * sigma
        assert RoundoffModel.throughput(eta, n, sigma) == pytest.approx(0.997, abs=0.002)

    def test_zero_sigma_gives_full_throughput(self):
        assert RoundoffModel.throughput(1e-10, 128, 0.0) == 1.0

    def test_mantissa_constant(self):
        assert MANTISSA_BITS_DOUBLE == 52


class TestThresholdPolicy:
    def test_component_sigma_of_unit_uniform(self, source):
        x = source.uniform_complex(4096)
        sigma = ThresholdPolicy().component_sigma(x)
        assert sigma == pytest.approx(np.sqrt(1 / 3), rel=0.1)

    def test_eta_scales_linearly_with_data(self, source):
        policy = ThresholdPolicy()
        x = source.normal_complex(2048)
        assert policy.eta_stage1(64, 10.0 * x) == pytest.approx(
            10.0 * policy.eta_stage1(64, x), rel=1e-6
        )

    def test_eta_stage2_exceeds_stage1(self, source):
        policy = ThresholdPolicy()
        x = source.normal_complex(4096)
        assert policy.eta_stage2(64, 64, x) > policy.eta_stage1(64, x)

    def test_relative_mode_produces_positive_thresholds(self, source):
        policy = ThresholdPolicy(mode=ThresholdMode.RELATIVE)
        x = source.normal_complex(1024)
        assert policy.eta_stage1(32, x) > 0
        assert policy.eta_stage2(32, 32, x) > 0
        assert policy.eta_memory(np.ones(32), x) > 0

    def test_eta_memory_accounts_for_weight_magnitude(self, source):
        policy = ThresholdPolicy()
        x = source.normal_complex(1024)
        small = policy.eta_memory(np.ones(32), x)
        large = policy.eta_memory(np.full(32, 100.0), x)
        assert large > 10 * small

    def test_thresholds_admit_fault_free_residuals(self, source):
        """Fault-free checksum residuals must stay below the thresholds
        (throughput ~ 100%, the design goal of Section 8)."""

        policy = ThresholdPolicy()
        n = 2**12
        x = source.uniform_complex(n)
        plan = TwoLayerPlan(n)
        m, k = plan.m, plan.k
        work = plan.gather_input(x)
        c_m = input_checksum_weights(m)
        r_m = computational_weights(m)
        ccg = weighted_sum(c_m, work, axis=0)
        mid = plan.stage1(np.array(work))
        residuals = np.abs(weighted_sum(r_m, mid, axis=0) - ccg)
        assert np.max(residuals) < policy.eta_stage1(m, x)

    def test_thresholds_catch_large_errors(self, source):
        policy = ThresholdPolicy()
        n = 2**12
        x = source.uniform_complex(n)
        plan = TwoLayerPlan(n)
        m = plan.m
        work = plan.gather_input(x)
        c_m = input_checksum_weights(m)
        r_m = computational_weights(m)
        ccg = weighted_sum(c_m, work, axis=0)
        mid = plan.stage1(np.array(work))
        mid[3, 0] += 1e-3  # inject
        residuals = np.abs(weighted_sum(r_m, mid, axis=0) - ccg)
        assert residuals[0] > policy.eta_stage1(m, x)

    def test_floor_prevents_zero_threshold(self):
        policy = ThresholdPolicy()
        assert policy.eta_stage1(16, np.zeros(16, dtype=complex)) > 0


class TestFTReport:
    def test_verification_and_detection_counters(self):
        report = FTReport(scheme="x")
        report.record_verification("ccv", 1, 1.0, 0.5, True)
        report.record_verification("ccv", 2, 0.1, 0.5, False)
        assert report.detected
        assert report.detection_count == 1
        assert report.counters["verifications"] == 2

    def test_correction_counters_by_kind(self):
        report = FTReport()
        report.record_correction("recompute", "stage1", 0)
        report.record_correction("memory-correct", "input", 1)
        report.record_correction("dmr-vote", "twiddle", None)
        assert report.recompute_count == 1
        assert report.memory_correction_count == 1
        assert report.dmr_correction_count == 1
        assert report.corrected

    def test_uncorrectable_blocks_corrected_flag(self):
        report = FTReport()
        report.record_correction("recompute", "stage1", 0)
        report.record_uncorrectable("stuck")
        assert not report.corrected
        assert report.has_uncorrectable

    def test_clean_property(self):
        assert FTReport().clean
        report = FTReport()
        report.record_verification("ccv", 0, 1.0, 0.1, True)
        assert not report.clean

    def test_merge_combines_counters(self):
        a, b = FTReport(), FTReport()
        a.record_correction("recompute", "s", 0)
        b.record_correction("recompute", "s", 1)
        b.record_verification("ccv", 0, 1.0, 0.5, True)
        a.merge(b)
        assert a.recompute_count == 2
        assert a.detection_count == 1

    def test_summary_keys(self):
        summary = FTReport().summary()
        assert {"verifications", "detections", "corrections", "uncorrectable"} <= set(summary)

    def test_restart_counts_as_recompute(self):
        report = FTReport()
        report.record_correction("restart", "offline", None)
        assert report.recompute_count == 1


class TestDMR:
    def test_clean_computation_runs_twice_only(self):
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4, dtype=complex)

        out = dmr_elementwise(compute)
        assert len(calls) == 2
        assert np.allclose(out, np.arange(4))

    def test_fault_triggers_third_vote_and_correction(self):
        report = FTReport()
        injector = FaultInjector().arm_computational(
            FaultSite.TWIDDLE_COMPUTE, element=2, magnitude=9.0
        )
        out = dmr_elementwise(
            lambda: np.ones(4, dtype=complex), injector=injector, report=report
        )
        assert np.allclose(out, 1.0)
        assert report.dmr_correction_count == 1

    def test_injector_only_touches_first_replica(self):
        injector = FaultInjector().arm_computational(
            FaultSite.TWIDDLE_COMPUTE, element=0, magnitude=5.0
        )
        out = dmr_elementwise(lambda: np.zeros(3, dtype=complex), injector=injector)
        assert np.allclose(out, 0.0)
        assert injector.fired_count == 1

    def test_tolerance_based_comparison(self):
        values = iter([np.ones(2, dtype=complex), np.ones(2, dtype=complex) * (1 + 1e-14)])

        def compute():
            try:
                return next(values)
            except StopIteration:
                return np.ones(2, dtype=complex)

        out = dmr_elementwise(compute, rtol=1e-10)
        assert np.allclose(out, 1.0)

    def test_dmr_scalar_clean(self):
        assert dmr_scalar(lambda: 3 + 4j) == 3 + 4j

    def test_dmr_scalar_votes_on_mismatch(self):
        values = iter([1 + 0j, 2 + 0j, 2 + 0j])
        report = FTReport()
        result = dmr_scalar(lambda: next(values), report=report)
        assert result == 2 + 0j
        assert report.dmr_correction_count == 1

"""Tests for the process-wide worker pool (repro.runtime.pool)."""

import threading

import pytest

from repro.runtime.pool import (
    WorkerPool,
    configure_pool,
    default_thread_count,
    get_pool,
    in_worker,
    pool_info,
    resolve_thread_count,
    shutdown_pool,
    split_ranges,
)


class TestSizing:
    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "5")
        assert default_thread_count() == 5

    def test_env_var_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "many")
        with pytest.raises(ValueError):
            default_thread_count()

    def test_without_env_var_uses_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert default_thread_count() >= 1

    def test_resolve_thread_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert resolve_thread_count(None) == 1
        assert resolve_thread_count(0) == 3
        assert resolve_thread_count(7) == 7
        with pytest.raises(ValueError):
            resolve_thread_count(-1)


class TestSplitRanges:
    def test_covers_everything_contiguously(self):
        for total in (1, 2, 7, 16, 100):
            for parts in (1, 2, 3, 8, 200):
                ranges = split_ranges(total, parts)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == total
                for (_, a_stop), (b_start, _) in zip(ranges, ranges[1:]):
                    assert a_stop == b_start

    def test_at_most_parts_chunks_and_balanced(self):
        ranges = split_ranges(10, 4)
        assert len(ranges) == 4
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        assert split_ranges(3, 8) == ((0, 1), (1, 2), (2, 3))

    def test_empty(self):
        assert split_ranges(0, 4) == ()


class TestWorkerPool:
    def test_results_in_task_order(self):
        pool = WorkerPool(4)
        try:
            results = pool.run_tasks([lambda i=i: i * i for i in range(20)])
            assert results == [i * i for i in range(20)]
        finally:
            pool.shutdown()

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(1)
        results = pool.run_tasks([lambda: threading.current_thread().name] * 3)
        assert all(name == threading.current_thread().name for name in results)
        info = pool.info()
        assert info.inline == 3
        assert info.submitted == 0
        assert not info.started

    def test_counters(self):
        pool = WorkerPool(2)
        try:
            pool.run_tasks([lambda: None] * 6)
            info = pool.info()
            assert info.workers == 2
            assert info.submitted == 6
            assert info.completed == 6
            assert info.started
        finally:
            pool.shutdown()

    def test_nested_submission_runs_inline_without_deadlock(self):
        # A worker re-entering run_tasks must not block on its own pool.
        pool = WorkerPool(2)
        try:
            def outer():
                assert in_worker()
                return pool.run_tasks([lambda i=i: i for i in range(4)])

            results = pool.run_tasks([outer, outer, outer, outer])
            assert results == [[0, 1, 2, 3]] * 4
        finally:
            pool.shutdown()

    def test_exceptions_propagate_after_all_tasks_finish(self):
        pool = WorkerPool(2)
        done = []
        try:
            def boom():
                raise RuntimeError("task failed")

            with pytest.raises(RuntimeError, match="task failed"):
                pool.run_tasks([boom, lambda: done.append(1), lambda: done.append(2)])
            assert sorted(done) == [1, 2]
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent_and_restartable(self):
        pool = WorkerPool(2)
        assert pool.run_tasks([lambda: 1, lambda: 2]) == [1, 2]
        pool.shutdown()
        pool.shutdown()
        # next task list lazily restarts the executor
        assert pool.run_tasks([lambda: 3, lambda: 4]) == [3, 4]
        pool.shutdown()

    def test_empty_task_list(self):
        assert WorkerPool(2).run_tasks([]) == []


class TestGlobalPool:
    def test_get_pool_is_singleton(self):
        assert get_pool() is get_pool()

    def test_pool_info_shape(self):
        info = pool_info()
        assert info.workers >= 1
        assert info.submitted >= 0

    def test_configure_resize_and_back(self):
        original = get_pool().workers
        try:
            resized = configure_pool(3)
            assert resized.workers == 3
            assert get_pool() is resized
            # same size is a no-op returning the same pool
            assert configure_pool(3) is resized
        finally:
            configure_pool(original)
        assert get_pool().workers == original

    def test_shutdown_pool_safe(self):
        shutdown_pool()  # must be idempotent and leave the pool reusable
        assert get_pool().run_tasks([lambda: 42, lambda: 43]) == [42, 43]

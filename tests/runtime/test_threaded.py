"""Tests for the threaded six-step program and its planner integration."""

import threading

import numpy as np
import pytest

import repro.fftlib.executor as executor
from repro.fftlib.executor import clear_program_cache, get_program
from repro.fftlib.plan import PlanDirection
from repro.fftlib.planner import Planner, PlannerPolicy, plan_fft
from repro.runtime.pool import WorkerPool
from repro.runtime.threaded import (
    MIN_THREADED_SIZE,
    ThreadedSixStepProgram,
    get_threaded_program,
    threading_profitable,
)


def _signal(n, seed=7, batch=None):
    rng = np.random.default_rng(seed)
    shape = (n,) if batch is None else (batch, n)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestCorrectness:
    # even power of two, even composite, odd composite, prime
    SIZES = (4096, 6144, 6561, 4099)

    @pytest.mark.parametrize("n", SIZES)
    def test_matches_numpy_single(self, n):
        program = ThreadedSixStepProgram(n, 4)
        x = _signal(n)
        assert np.allclose(program.execute(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", SIZES)
    def test_matches_numpy_batched(self, n):
        program = ThreadedSixStepProgram(n, 4)
        X = _signal(n, batch=7)
        assert np.allclose(program.execute(X), np.fft.fft(X, axis=-1))

    def test_nd_batch_shape_preserved(self):
        program = ThreadedSixStepProgram(4096, 4)
        X = _signal(4096, batch=6).reshape(2, 3, 4096)
        out = program.execute(X)
        assert out.shape == X.shape
        assert np.allclose(out, np.fft.fft(X, axis=-1))

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            ThreadedSixStepProgram(4096, 2).execute(np.zeros(100, dtype=complex))

    def test_empty_batch_matches_serial(self):
        program = ThreadedSixStepProgram(4096, 4)
        empty = np.empty((0, 4096), dtype=complex)
        out = program.execute(empty)
        assert out.shape == (0, 4096)
        assert out.shape == get_program(4096).execute(empty).shape


class TestDeterminism:
    @pytest.mark.parametrize("n", (4096, 6561))
    def test_parallel_bitwise_equals_inline(self, n):
        # The same chunk list run on the pool and run sequentially must give
        # bitwise-identical spectra (chunk layout is independent of the pool).
        program = ThreadedSixStepProgram(n, 4)
        x = _signal(n, seed=n)
        assert np.array_equal(program.execute(x), program.execute(x, parallel=False))
        X = _signal(n, seed=n + 1, batch=5)
        assert np.array_equal(program.execute(X), program.execute(X, parallel=False))

    def test_repeated_parallel_runs_bitwise_identical(self):
        program = ThreadedSixStepProgram(8192, 4)
        x = _signal(8192, seed=1)
        first = program.execute(x)
        for _ in range(3):
            assert np.array_equal(first, program.execute(x))

    def test_dedicated_pool_matches_global(self):
        program = ThreadedSixStepProgram(4096, 3)
        x = _signal(4096, seed=2)
        pool = WorkerPool(2)
        try:
            assert np.array_equal(program.execute(x), program.execute(x, pool=pool))
        finally:
            pool.shutdown()


class TestFallbacks:
    def test_prime_falls_back_to_serial(self):
        program = ThreadedSixStepProgram(4099, 4)
        assert program.serial is not None
        assert "serial fallback" in program.describe()

    def test_small_size_falls_back(self):
        assert ThreadedSixStepProgram(256, 4).serial is not None

    def test_single_thread_falls_back(self):
        assert ThreadedSixStepProgram(1 << 14, 1).serial is not None

    def test_threading_profitable(self):
        assert threading_profitable(1 << 16, 4)
        assert not threading_profitable(1 << 16, 1)
        assert not threading_profitable(MIN_THREADED_SIZE // 2, 4)
        assert not threading_profitable(4099, 4)  # prime: no balanced split


class TestProgramCache:
    def test_cached_per_thread_count(self):
        a = get_threaded_program(4096, 4)
        b = get_threaded_program(4096, 4)
        c = get_threaded_program(4096, 2)
        assert a is b
        assert a is not c
        assert isinstance(a, ThreadedSixStepProgram)

    def test_single_thread_returns_serial_program(self):
        assert get_threaded_program(4096, 1) is get_program(4096)
        assert get_threaded_program(4096, None) is get_program(4096)

    def test_no_compile_stampede(self, monkeypatch):
        # Concurrent get_program calls for the same new key must compile
        # exactly once (per-key once-guard), not once per thread.
        clear_program_cache()
        compiled = []
        real_cls = executor.StageProgram

        class Counting(real_cls):
            def __init__(self, n):
                compiled.append(n)
                super().__init__(n)

        monkeypatch.setattr(executor, "StageProgram", Counting)
        n = 3 * 5 * 7 * 11  # a size nothing else compiles
        results = []
        barrier = threading.Barrier(8)

        def fetch():
            barrier.wait()
            results.append(executor.get_program(n))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert compiled.count(n) == 1
        assert all(r is results[0] for r in results)

    def test_failed_compile_releases_guard(self, monkeypatch):
        clear_program_cache()
        calls = []
        real_cls = executor.StageProgram

        class FlakyOnce(real_cls):
            def __init__(self, n):
                calls.append(n)
                if len(calls) == 1:
                    raise RuntimeError("transient compile failure")
                super().__init__(n)

        monkeypatch.setattr(executor, "StageProgram", FlakyOnce)
        n = 3 * 5 * 7 * 13
        with pytest.raises(RuntimeError):
            executor.get_program(n)
        # the in-flight guard must not wedge subsequent requests
        assert executor.get_program(n).n == n


class TestPlannerIntegration:
    def test_plan_fft_threads_lowers_sixstep(self):
        plan = plan_fft(1 << 14, threads=4)
        assert isinstance(plan.program, ThreadedSixStepProgram)
        assert plan.threads == 4
        assert "threads=4" in plan.describe()
        x = _signal(1 << 14)
        assert np.allclose(plan.execute(x), np.fft.fft(x))

    def test_threaded_backward_plan(self):
        plan = plan_fft(1 << 14, PlanDirection.BACKWARD, threads=4)
        x = _signal(1 << 14, seed=3)
        assert np.allclose(plan.execute(x), np.fft.ifft(x))

    def test_serial_request_unchanged(self):
        plan = plan_fft(1 << 14)
        assert plan.threads == 1
        assert not isinstance(plan.program, ThreadedSixStepProgram)

    def test_wisdom_cached_per_thread_count(self):
        planner = Planner()
        a = planner.plan(1 << 13, threads=4)
        b = planner.plan(1 << 13, threads=4)
        c = planner.plan(1 << 13)
        assert a is b
        assert a is not c

    def test_unprofitable_size_lowers_serial(self):
        planner = Planner()
        plan = planner.plan(512, threads=4)
        assert plan.threads == 1
        assert not isinstance(plan.program, ThreadedSixStepProgram)

    def test_numpy_backend_stays_serial(self):
        plan = plan_fft(1 << 14, backend="numpy", threads=4)
        assert plan.threads == 1

    def test_real_plan_stays_serial(self):
        plan = plan_fft(1 << 14, real=True, threads=4)
        assert plan.threads == 1
        assert plan.real

    def test_measure_mode_times_and_records_winner(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        n = 1 << 13
        plan = planner.plan(n, threads=2)
        key = f"{n}:t2"
        timings = planner.thread_measurements[key]
        assert set(timings) == {"serial", "threaded"}
        winner_threaded = timings["threaded"] < timings["serial"]
        assert plan.threads == (2 if winner_threaded else 1)

    def test_measure_wisdom_roundtrip_without_retiming(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        n = 1 << 13
        planner.plan(n, threads=2)
        exported = planner.export_wisdom()
        assert "__thread_measurements__" in exported
        assert any(key.endswith(":t2") for key in exported if not key.startswith("__"))

        seeded = Planner(policy=PlannerPolicy.MEASURE)
        seeded.import_wisdom(exported)
        # imported timings must be reused verbatim (no re-timing)
        assert seeded.thread_measurements[f"{n}:t2"] == planner.thread_measurements[f"{n}:t2"]
        first = seeded.plan(n, threads=2)
        assert first.threads == planner.plan(n, threads=2).threads
        assert seeded.thread_measurements[f"{n}:t2"] == planner.thread_measurements[f"{n}:t2"]

    def test_legacy_wisdom_import_still_works(self):
        planner = Planner()
        planner.import_wisdom({"4096:forward": "mixed-radix"})
        assert (4096, PlanDirection.FORWARD, "fftlib", False, 1, False, False) in planner.wisdom

    def test_import_without_thread_timings_never_measures(self):
        # A MEASURE planner importing a threaded key from an exporter that
        # recorded no timings (e.g. an ESTIMATE planner) must not run live
        # benchmarks during deserialization.
        planner = Planner(policy=PlannerPolicy.MEASURE)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("import_wisdom must not time transforms")

        planner._threaded_wins = forbidden
        planner.import_wisdom({"8192:forward:fftlib:t4": "mixed-radix"})
        key = (8192, PlanDirection.FORWARD, "fftlib", False, 4, False, False)
        assert key in planner.wisdom
        # no timings recorded -> the profitability heuristic stands in
        assert planner.wisdom[key].threads == 4
        assert planner.thread_measurements == {}

    def test_import_honours_recorded_thread_winner(self):
        planner = Planner(policy=PlannerPolicy.MEASURE)
        planner.import_wisdom(
            {
                "8192:forward:fftlib:t4": "mixed-radix",
                "__thread_measurements__": {
                    "8192:t4": {"serial": 0.001, "threaded": 0.005}
                },
            }
        )
        key = (8192, PlanDirection.FORWARD, "fftlib", False, 4, False, False)
        assert planner.wisdom[key].threads == 1  # recorded winner: serial

"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import validation


class TestAsComplexVector:
    def test_promotes_real_input(self):
        out = validation.as_complex_vector([1.0, 2.0, 3.0])
        assert out.dtype == np.complex128
        assert np.allclose(out, [1, 2, 3])

    def test_preserves_complex_values(self):
        x = np.array([1 + 2j, 3 - 4j])
        out = validation.as_complex_vector(x)
        assert np.array_equal(out, x)

    def test_copy_flag_creates_independent_array(self):
        x = np.array([1 + 0j, 2 + 0j])
        out = validation.as_complex_vector(x, copy=True)
        out[0] = 99
        assert x[0] == 1 + 0j

    def test_no_copy_may_alias(self):
        x = np.array([1 + 0j, 2 + 0j])
        out = validation.as_complex_vector(x)
        assert out.dtype == np.complex128

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            validation.as_complex_vector(np.zeros((2, 2)))

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="non-empty"):
            validation.as_complex_vector(np.zeros(0))

    def test_error_message_uses_name(self):
        with pytest.raises(ValueError, match="signal"):
            validation.as_complex_vector(np.zeros((2, 2)), name="signal")


class TestAsComplexMatrix:
    def test_accepts_2d(self):
        out = validation.as_complex_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.complex128

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            validation.as_complex_matrix([1, 2, 3])


class TestEnsurePositiveInt:
    @pytest.mark.parametrize("value", [1, 7, 2**30, np.int64(5)])
    def test_accepts_positive_integers(self, value):
        assert validation.ensure_positive_int(value) == int(value)

    @pytest.mark.parametrize("value", [0, -1, 2.5, -7])
    def test_rejects_non_positive_or_fractional(self, value):
        with pytest.raises(ValueError):
            validation.ensure_positive_int(value)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            validation.ensure_positive_int("four")


class TestPowers:
    @pytest.mark.parametrize("n,expected", [(1, True), (2, True), (1024, True), (3, False), (0, False), (6, False)])
    def test_is_power_of_two(self, n, expected):
        assert validation.is_power_of_two(n) is expected

    def test_ensure_power_of_accepts(self):
        assert validation.ensure_power_of(27, 3) == 27

    def test_ensure_power_of_rejects(self):
        with pytest.raises(ValueError):
            validation.ensure_power_of(24, 3)

    def test_ensure_power_of_rejects_base_one(self):
        with pytest.raises(ValueError):
            validation.ensure_power_of(8, 1)


class TestSplitSize:
    @pytest.mark.parametrize("n", [1, 2, 4, 12, 36, 64, 100, 1024, 2**15, 720])
    def test_product_is_preserved(self, n):
        m, k = validation.split_size(n)
        assert m * k == n

    @pytest.mark.parametrize("n", [4, 12, 36, 64, 100, 1024, 2**15])
    def test_factors_are_balanced(self, n):
        m, k = validation.split_size(n)
        assert m >= k
        # both factors within a factor ~2 of sqrt(n) for highly composite n
        assert m <= 2 * np.sqrt(n) + 1

    def test_prime_size_degenerates(self):
        m, k = validation.split_size(13)
        assert (m, k) == (13, 1)


class TestIterChunks:
    def test_covers_range_exactly(self):
        chunks = list(validation.iter_chunks(10, 3))
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk(self):
        assert list(validation.iter_chunks(4, 10)) == [(0, 4)]

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError):
            list(validation.iter_chunks(4, 0))

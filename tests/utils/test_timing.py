"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Stopwatch, Timer, measure


class TestTimer:
    def test_section_accumulates(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        assert t.counts["a"] == 2
        assert t.totals["a"] >= 0.0

    def test_total_sums_all_labels(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("b"):
            pass
        assert t.total() == pytest.approx(t.total("a") + t.total("b"))

    def test_unknown_label_is_zero(self):
        assert Timer().total("missing") == 0.0

    def test_reset_clears_state(self):
        t = Timer()
        with t.section("a"):
            pass
        t.reset()
        assert t.totals == {} and t.counts == {}

    def test_as_dict_returns_copy(self):
        t = Timer()
        with t.section("a"):
            pass
        d = t.as_dict()
        d["a"] = -1
        assert t.totals["a"] >= 0.0


class TestStopwatch:
    def test_measures_elapsed_time(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        elapsed = sw.stop()
        assert elapsed >= 0.009

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004

    def test_accumulates_over_multiple_intervals(self):
        sw = Stopwatch()
        sw.start(); sw.stop()
        first = sw.elapsed
        sw.start(); sw.stop()
        assert sw.elapsed >= first


class TestMeasure:
    def test_returns_statistics(self):
        stats = measure(lambda: sum(range(100)), repeats=3, warmup=1)
        assert set(stats) == {"best", "mean", "times"}
        assert len(stats["times"]) == 3
        assert stats["best"] <= stats["mean"] + 1e-12

    def test_counts_calls(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=1)
        assert len(calls) == 3  # warmup + repeats

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

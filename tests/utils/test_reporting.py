"""Tests for repro.utils.reporting."""

import pytest

from repro.utils.reporting import Table, dict_rows, format_float, render_table


class TestFormatFloat:
    def test_plain_value(self):
        assert format_float(1.2345) == "1.234"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_tiny_value_uses_scientific(self):
        assert "e" in format_float(3.2e-9)

    def test_none_becomes_dash(self):
        assert format_float(None) == "-"

    def test_digits_control(self):
        assert format_float(1.23456, digits=5) == "1.23456"


class TestTable:
    def test_positional_rows_render(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "demo" in text and "2.500" in text

    def test_named_rows_follow_column_order(self):
        t = Table("demo", ["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows[0] == ["1", "2"]

    def test_mixing_positional_and_named_raises(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, a=1)

    def test_wrong_cell_count_raises(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_notes_appear_in_render(self):
        t = Table("demo", ["a"])
        t.add_row(1)
        t.add_note("sizes scaled down")
        assert "sizes scaled down" in t.render()

    def test_bool_and_none_cells(self):
        t = Table("demo", ["a", "b", "c"])
        t.add_row(True, None, "x")
        assert t.rows[0] == ["yes", "-", "x"]

    def test_str_dunder(self):
        t = Table("demo", ["a"])
        t.add_row(3)
        assert "demo" in str(t)


class TestRenderTable:
    def test_alignment_pads_columns(self):
        text = render_table("t", ["col", "x"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines[2:5])) <= 2  # header + rows aligned

    def test_notes_are_appended(self):
        text = render_table("t", ["a"], [["1"]], notes=["hello"])
        assert "note: hello" in text


class TestDictRows:
    def test_orders_by_columns(self):
        rows = dict_rows(["b", "a"], [{"a": 1, "b": 2}])
        assert rows == [["2", "1"]]

    def test_missing_keys_become_dash(self):
        rows = dict_rows(["a", "z"], [{"a": 1}])
        assert rows == [["1", "-"]]

"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, default_rng, spawn_rngs


class TestDefaultRng:
    def test_default_seed_is_deterministic(self):
        a = default_rng().standard_normal(8)
        b = default_rng().standard_normal(8)
        assert np.array_equal(a, b)

    def test_explicit_seed_changes_stream(self):
        a = default_rng(1).standard_normal(8)
        b = default_rng(2).standard_normal(8)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_streams_are_independent(self):
        streams = spawn_rngs(3, seed=7)
        draws = [g.standard_normal(16) for g in streams]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_is_reproducible(self):
        a = spawn_rngs(2, seed=7)[0].standard_normal(4)
        b = spawn_rngs(2, seed=7)[0].standard_normal(4)
        assert np.array_equal(a, b)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0)


class TestRandomSource:
    def test_uniform_complex_range(self):
        src = RandomSource(seed=3)
        x = src.uniform_complex(1000)
        assert x.dtype == np.complex128
        assert np.all(np.abs(x.real) <= 1.0)
        assert np.all(np.abs(x.imag) <= 1.0)

    def test_normal_complex_statistics(self):
        src = RandomSource(seed=3)
        x = src.normal_complex(20000)
        assert abs(np.mean(x.real)) < 0.05
        assert abs(np.std(x.real) - 1.0) < 0.05

    def test_signal_with_tones_has_peaks(self):
        src = RandomSource(seed=3)
        x = src.signal_with_tones(256, tones=[5, 20])
        spectrum = np.abs(np.fft.fft(x))
        peaks = set(np.argsort(spectrum)[-2:])
        assert peaks == {5, 20}

    def test_signal_with_noise_is_complex(self):
        src = RandomSource(seed=3)
        x = src.signal_with_tones(64, tones=[3], noise=0.1)
        assert x.shape == (64,)

    def test_spawn_children_are_deterministic(self):
        a = RandomSource(seed=11).spawn(3)[1].uniform_complex(4)
        b = RandomSource(seed=11).spawn(3)[1].uniform_complex(4)
        assert np.array_equal(a, b)

    def test_spawn_children_differ_from_each_other(self):
        children = RandomSource(seed=11).spawn(2)
        assert not np.array_equal(children[0].uniform_complex(8), children[1].uniform_complex(8))

    def test_integers_and_choice_helpers(self):
        src = RandomSource(seed=5)
        vals = src.integers(0, 10, size=100)
        assert np.all((0 <= vals) & (vals < 10))
        pick = src.choice([1, 2, 3])
        assert pick in (1, 2, 3)

    def test_uniform_helper(self):
        src = RandomSource(seed=5)
        vals = src.uniform(-2.0, 2.0, size=50)
        assert np.all((-2.0 <= vals) & (vals <= 2.0))

"""Tests for the fault injector."""

import numpy as np

from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.models import FaultSite, FaultSpec


class TestNullInjector:
    def test_never_fires(self):
        array = np.ones(4, dtype=complex)
        injector = NullInjector()
        assert injector.visit(FaultSite.INPUT, array) is False
        assert np.all(array == 1)
        assert injector.fired_count == 0


class TestArmAndVisit:
    def test_add_constant_fault(self):
        injector = FaultInjector().arm_computational(
            FaultSite.STAGE1_COMPUTE, element=2, magnitude=5.0
        )
        array = np.zeros(4, dtype=complex)
        fired = injector.visit(FaultSite.STAGE1_COMPUTE, array)
        assert fired and array[2] == 5.0
        assert injector.fired_count == 1

    def test_set_constant_fault(self):
        injector = FaultInjector().arm_memory(FaultSite.INPUT, element=1, magnitude=7.0)
        array = np.full(4, 2 + 2j)
        injector.visit(FaultSite.INPUT, array)
        assert array[1] == 7.0

    def test_bitflip_fault_changes_value(self):
        injector = FaultInjector().arm_bitflip(FaultSite.OUTPUT, element=0, bit=62)
        array = np.ones(4, dtype=complex)
        injector.visit(FaultSite.OUTPUT, array)
        assert array[0] != 1.0

    def test_one_shot_semantics(self):
        injector = FaultInjector().arm_computational(FaultSite.OUTPUT, element=0)
        array = np.zeros(2, dtype=complex)
        assert injector.visit(FaultSite.OUTPUT, array)
        assert not injector.visit(FaultSite.OUTPUT, array)
        assert injector.fired_count == 1

    def test_persistent_spec_fires_repeatedly(self):
        spec = FaultSpec(site=FaultSite.OUTPUT, element=0, fire_once=False, magnitude=1.0)
        injector = FaultInjector(specs=[spec])
        array = np.zeros(2, dtype=complex)
        injector.visit(FaultSite.OUTPUT, array)
        injector.visit(FaultSite.OUTPUT, array)
        assert array[0] == 2.0
        assert injector.fired_count == 2

    def test_site_filtering(self):
        injector = FaultInjector().arm_memory(FaultSite.INTERMEDIATE, element=0)
        array = np.zeros(2, dtype=complex)
        assert not injector.visit(FaultSite.INPUT, array)
        assert injector.visit(FaultSite.INTERMEDIATE, array)

    def test_index_filtering(self):
        injector = FaultInjector().arm_computational(FaultSite.STAGE1_COMPUTE, index=3, element=0)
        array = np.zeros(2, dtype=complex)
        assert not injector.visit(FaultSite.STAGE1_COMPUTE, array, index=2)
        assert injector.visit(FaultSite.STAGE1_COMPUTE, array, index=3)

    def test_rank_filtering(self):
        injector = FaultInjector().arm_computational(FaultSite.RANK_LOCAL_FFT, rank=1, element=0)
        array = np.zeros(2, dtype=complex)
        assert not injector.visit(FaultSite.RANK_LOCAL_FFT, array, rank=0)
        assert injector.visit(FaultSite.RANK_LOCAL_FFT, array, rank=1)

    def test_corruption_lands_in_noncontiguous_views(self):
        base = np.zeros((4, 4), dtype=complex)
        column = base[:, 2]  # strided view
        injector = FaultInjector().arm_computational(FaultSite.OUTPUT, element=1, magnitude=3.0)
        injector.visit(FaultSite.OUTPUT, column)
        assert base[1, 2] == 3.0

    def test_corruption_in_2d_array(self):
        base = np.zeros((3, 5), dtype=complex)
        injector = FaultInjector().arm_memory(FaultSite.INTERMEDIATE, element=7, magnitude=9.0)
        injector.visit(FaultSite.INTERMEDIATE, base)
        assert base.reshape(-1)[7] == 9.0

    def test_element_wraps_modulo_size(self):
        injector = FaultInjector().arm_computational(FaultSite.OUTPUT, element=10, magnitude=1.0)
        array = np.zeros(4, dtype=complex)
        injector.visit(FaultSite.OUTPUT, array)
        assert array[10 % 4] == 1.0

    def test_random_element_uses_rng(self):
        injector = FaultInjector(rng=np.random.default_rng(0)).arm_computational(
            FaultSite.OUTPUT, magnitude=1.0
        )
        array = np.zeros(100, dtype=complex)
        injector.visit(FaultSite.OUTPUT, array)
        assert np.count_nonzero(array) == 1

    def test_multiple_specs_can_fire_on_one_visit(self):
        injector = (
            FaultInjector()
            .arm_computational(FaultSite.OUTPUT, element=0, magnitude=1.0)
            .arm_computational(FaultSite.OUTPUT, element=1, magnitude=2.0)
        )
        array = np.zeros(4, dtype=complex)
        injector.visit(FaultSite.OUTPUT, array)
        assert array[0] == 1.0 and array[1] == 2.0


class TestEventsAndReset:
    def test_event_records_original_and_corrupted(self):
        injector = FaultInjector().arm_memory(FaultSite.INPUT, element=0, magnitude=5.0)
        array = np.array([1 + 1j, 2 + 2j])
        injector.visit(FaultSite.INPUT, array)
        event = injector.events[0]
        assert event.original_value == 1 + 1j
        assert event.corrupted_value == 5.0
        assert event.element == 0

    def test_reset_rearms_specs(self):
        injector = FaultInjector().arm_memory(FaultSite.INPUT, element=0, magnitude=5.0)
        array = np.zeros(2, dtype=complex)
        injector.visit(FaultSite.INPUT, array)
        injector.reset()
        assert injector.fired_count == 0
        assert injector.visit(FaultSite.INPUT, array)

    def test_from_specs_constructor(self):
        specs = [FaultSpec(site=FaultSite.OUTPUT, element=0)]
        injector = FaultInjector.from_specs(specs, seed=3)
        array = np.zeros(2, dtype=complex)
        assert injector.visit(FaultSite.OUTPUT, array)

"""Tests for fault models and IEEE-754 bit flipping."""

import pytest

from repro.faults.bitflip import (
    HIGH_BIT_RANGE,
    flip_bit_in_complex,
    flip_bit_in_float,
    random_high_bit,
)
from repro.faults.models import COMPUTE_SITES, FaultEvent, FaultKind, FaultSite, FaultSpec


class TestBitFlip:
    def test_flip_is_involutive(self):
        value = 3.14159
        for bit in [0, 12, 40, 52, 62, 63]:
            assert flip_bit_in_float(flip_bit_in_float(value, bit), bit) == value

    def test_sign_bit_negates(self):
        assert flip_bit_in_float(2.5, 63) == -2.5

    def test_low_bit_changes_value_slightly(self):
        original = 1.0
        flipped = flip_bit_in_float(original, 0)
        assert flipped != original
        assert abs(flipped - original) < 1e-15

    def test_exponent_bit_changes_value_vastly(self):
        original = 1.0
        flipped = flip_bit_in_float(original, 62)
        assert abs(flipped) > 1e100 or abs(flipped) < 1e-100

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_bit_in_float(1.0, 64)

    def test_complex_real_component(self):
        value = 1.0 + 2.0j
        flipped = flip_bit_in_complex(value, 63)
        assert flipped == -1.0 + 2.0j

    def test_complex_imaginary_component(self):
        value = 1.0 + 2.0j
        flipped = flip_bit_in_complex(value, 63, imaginary=True)
        assert flipped == 1.0 - 2.0j

    def test_random_high_bit_in_range(self, rng):
        for _ in range(50):
            bit = random_high_bit(rng)
            assert HIGH_BIT_RANGE[0] <= bit < HIGH_BIT_RANGE[1]

    def test_random_high_bit_custom_range(self, rng):
        assert random_high_bit(rng, low=60, high=61) == 60

    def test_random_high_bit_invalid_range(self, rng):
        with pytest.raises(ValueError):
            random_high_bit(rng, low=10, high=5)


class TestFaultSpec:
    def test_defaults_are_one_shot_additive(self):
        spec = FaultSpec(site=FaultSite.STAGE1_COMPUTE)
        assert spec.kind is FaultKind.ADD_CONSTANT
        assert spec.fire_once

    def test_matches_site_and_index(self):
        spec = FaultSpec(site=FaultSite.STAGE1_COMPUTE, index=3)
        assert spec.matches(FaultSite.STAGE1_COMPUTE, 3, None)
        assert not spec.matches(FaultSite.STAGE1_COMPUTE, 4, None)
        assert not spec.matches(FaultSite.STAGE2_COMPUTE, 3, None)

    def test_wildcard_index_matches_any(self):
        spec = FaultSpec(site=FaultSite.OUTPUT)
        assert spec.matches(FaultSite.OUTPUT, 7, None)
        assert spec.matches(FaultSite.OUTPUT, None, None)

    def test_rank_filter(self):
        spec = FaultSpec(site=FaultSite.RANK_LOCAL_FFT, rank=2)
        assert spec.matches(FaultSite.RANK_LOCAL_FFT, None, 2)
        assert not spec.matches(FaultSite.RANK_LOCAL_FFT, None, 3)

    def test_fired_spec_stops_matching(self):
        spec = FaultSpec(site=FaultSite.OUTPUT)
        spec.fired = 1
        assert not spec.matches(FaultSite.OUTPUT, None, None)

    def test_persistent_spec_keeps_matching(self):
        spec = FaultSpec(site=FaultSite.OUTPUT, fire_once=False)
        spec.fired = 5
        assert spec.matches(FaultSite.OUTPUT, None, None)

    def test_is_computational_classification(self):
        assert FaultSpec(site=FaultSite.STAGE1_COMPUTE).is_computational
        assert not FaultSpec(site=FaultSite.INPUT).is_computational
        assert FaultSite.TWIDDLE_COMPUTE in COMPUTE_SITES


class TestFaultEvent:
    def test_delta(self):
        event = FaultEvent(
            site=FaultSite.OUTPUT,
            index=None,
            element=3,
            kind=FaultKind.ADD_CONSTANT,
            rank=None,
            original_value=1 + 1j,
            corrupted_value=4 + 1j,
        )
        assert event.delta == 3 + 0j

"""Tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.faults.campaign import CampaignResult, CoverageCampaign, TrialOutcome, relative_inf_error
from repro.faults.models import FaultKind, FaultSite, FaultSpec


class TestRelativeInfError:
    def test_zero_for_identical(self):
        x = np.array([1 + 1j, 2.0])
        assert relative_inf_error(x, x) == 0.0

    def test_scales_by_reference_norm(self):
        ref = np.array([0.0, 10.0])
        cand = np.array([1.0, 10.0])
        assert relative_inf_error(ref, cand) == pytest.approx(0.1)

    def test_zero_reference_falls_back_to_absolute(self):
        ref = np.zeros(3)
        cand = np.array([0.0, 0.5, 0.0])
        assert relative_inf_error(ref, cand) == pytest.approx(0.5)


class TestTrialOutcome:
    def test_silent_corruption_flag(self):
        silent = TrialOutcome(
            trial=0,
            injected=1,
            detected=False,
            corrected=False,
            uncorrected=False,
            relative_error=1.0,
        )
        caught = TrialOutcome(
            trial=1,
            injected=1,
            detected=True,
            corrected=True,
            uncorrected=False,
            relative_error=0.0,
        )
        clean = TrialOutcome(
            trial=2,
            injected=0,
            detected=False,
            corrected=False,
            uncorrected=False,
            relative_error=0.0,
        )
        assert silent.silent_corruption
        assert not caught.silent_corruption
        assert not clean.silent_corruption


class TestCampaignResult:
    def _result(self):
        result = CampaignResult()
        result.add(TrialOutcome(0, 1, True, True, False, 1e-15))
        result.add(TrialOutcome(1, 1, True, False, True, 1e-3))
        result.add(TrialOutcome(2, 1, False, False, False, 1e-7))
        result.add(TrialOutcome(3, 0, False, False, False, 0.0))
        return result

    def test_rates(self):
        result = self._result()
        assert result.trials == 4
        assert result.detection_rate == pytest.approx(2 / 3)
        assert result.correction_rate == pytest.approx(1 / 3)
        assert result.uncorrected_fraction == pytest.approx(1 / 4)

    def test_fraction_with_error_above(self):
        result = self._result()
        # uncorrected trial counts as infinite error
        assert result.fraction_with_error_above(1e-6) == pytest.approx(1 / 4)
        assert result.fraction_with_error_above(1e-12) == pytest.approx(2 / 4)

    def test_coverage_is_complement(self):
        result = self._result()
        assert result.coverage_at(1e-6) == pytest.approx(1 - result.fraction_with_error_above(1e-6))

    def test_error_distribution_keys(self):
        dist = self._result().error_distribution([1e-6, 1e-12])
        assert set(dist) == {1e-6, 1e-12}

    def test_empty_result_defaults(self):
        result = CampaignResult()
        assert result.detection_rate == 1.0
        assert result.fraction_with_error_above(1.0) == 0.0

    def test_summary_fields(self):
        summary = self._result().summary()
        assert set(summary) == {"trials", "detection_rate", "correction_rate", "uncorrected_fraction"}


class TestCoverageCampaign:
    def test_end_to_end_with_toy_scheme(self):
        """A toy 'scheme' that sums its input; the fault adds 100 to one element."""

        def make_input(trial, rng):
            return np.ones(8, dtype=complex)

        def reference(x):
            return x.copy()

        def make_faults(trial, rng):
            if trial % 2 == 0:
                return [
                    FaultSpec(
                        site=FaultSite.INPUT,
                        element=0,
                        kind=FaultKind.ADD_CONSTANT,
                        magnitude=100.0,
                    )
                ]
            return []

        def run_trial(x, injector):
            injector.visit(FaultSite.INPUT, x)
            detected = bool(np.max(np.abs(x)) > 50)
            corrected = False
            if detected:
                x[np.argmax(np.abs(x))] = 1.0
                corrected = True
            return x, detected, corrected, False

        campaign = CoverageCampaign(
            make_input=make_input,
            run_trial=run_trial,
            reference=reference,
            make_faults=make_faults,
            seed=1,
        )
        result = campaign.run(6)
        assert result.trials == 6
        assert result.detection_rate == 1.0  # every injected trial detected
        assert result.correction_rate == 1.0
        assert all(o.relative_error < 1e-12 for o in result.outcomes)

    def test_injected_count_recorded(self):
        campaign = CoverageCampaign(
            make_input=lambda t, rng: np.ones(4, dtype=complex),
            run_trial=lambda x, inj: (inj.visit(FaultSite.INPUT, x), x)[1:]
            and (x, False, False, False),
            reference=lambda x: x.copy(),
            make_faults=lambda t, rng: [FaultSpec(site=FaultSite.INPUT, element=0)],
            seed=2,
        )
        result = campaign.run(3)
        assert all(o.injected == 1 for o in result.outcomes)

    def test_rejects_non_positive_trials(self):
        campaign = CoverageCampaign(
            make_input=lambda t, rng: np.ones(2, dtype=complex),
            run_trial=lambda x, inj: (x, False, False, False),
            reference=lambda x: x,
            make_faults=lambda t, rng: [],
        )
        with pytest.raises(ValueError):
            campaign.run(0)
